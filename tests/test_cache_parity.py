"""Cache-correctness battery: the result cache never changes an answer.

Differential property tests for the semantic result cache (see
``docs/caching.md``).  The ground truth is always an identically built
*uncached* system; the cached system must be byte-identical to it:

1. **Read parity** — all 13 Table III expressions, on all four backends,
   at optimization levels 0/1/2, with the warm (second) pass asserted to
   actually serve hits.
2. **Write freshness** — interleaved ``persist()`` writes (and
   engine-level appends reported via ``note_write``) between repeated
   reads: the stale-read regression test.
3. **Randomized interleavings** — a seeded random schedule of reads,
   repeats, and writes replayed against cached and uncached twins.
4. **Chaos determinism** — fault injection with retries on top of the
   cache still answers exactly like a clean uncached system.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.docstore import MongoDatabase
from repro.eager import EagerFrame
from repro.graphdb import Neo4jDatabase
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB
from repro.wisconsin import loaders, wisconsin_records

RECORDS = 240
BACKENDS = ("postgres", "asterixdb", "mongodb", "neo4j")
LEVELS = (0, 1, 2)

API = DataFrameAPI()
PARAMS = benchmark_params()

_FACTORIES = {
    "asterixdb": AsterixDBConnector,
    "postgres": PostgresConnector,
    "mongodb": MongoDBConnector,
    "neo4j": Neo4jConnector,
}


def _build_engine(backend: str, records):
    if backend == "postgres":
        db = SQLDatabase(name="postgres")
        loaders.load_postgres(db, "Bench", "data", records, indexes=False)
        loaders.load_postgres(db, "Bench", "data2", records, indexes=False)
    elif backend == "asterixdb":
        db = AsterixDB(query_prep_overhead=0.0)
        loaders.load_asterixdb(db, "Bench", "data", records, indexes=False)
        loaders.load_asterixdb(db, "Bench", "data2", records, indexes=False)
    elif backend == "mongodb":
        db = MongoDatabase(query_prep_overhead=0.0)
        loaders.load_mongodb(db, "data", records, indexes=False)
        loaders.load_mongodb(db, "data2", records, indexes=False)
    else:
        db = Neo4jDatabase(query_prep_overhead=0.0)
        loaders.load_neo4j(db, "data", records, indexes=False)
        loaders.load_neo4j(db, "data2", records, indexes=False)
    return db


@pytest.fixture(scope="module")
def engines():
    """Fresh read-only engines, shared by cached and uncached connectors."""
    records = wisconsin_records(RECORDS)
    return {backend: _build_engine(backend, records) for backend in BACKENDS}


def _make_connector(backend: str, engines, level: int, *, cache):
    # cache=False must stay off even when the suite runs under
    # REPRO_CACHE=1 — that is the differential baseline.
    return _FACTORIES[backend](
        engines[backend], optimization_level=level, cache=cache
    )


def _normalize(result):
    if isinstance(result, EagerFrame):
        return sorted(
            tuple(sorted(record.items())) for record in result.to_records()
        )
    return result


def _run_expressions(connector):
    df = PolyFrame("Bench", "data", connector)
    df2 = PolyFrame("Bench", "data2", connector)
    return {
        expr.id: _normalize(expr.run(df, df2, PARAMS, API))
        for expr in EXPRESSIONS
    }


# ----------------------------------------------------------------------
# 1. Read parity: expressions x backends x optimization levels
# ----------------------------------------------------------------------
@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_cache_on_equals_cache_off(backend, level, engines):
    baseline = _run_expressions(
        _make_connector(backend, engines, level, cache=False)
    )
    cached = _make_connector(backend, engines, level, cache=True)
    cold = _run_expressions(cached)
    warm = _run_expressions(cached)
    assert cold == baseline, f"{backend} level {level}: cold pass diverged"
    assert warm == baseline, f"{backend} level {level}: warm pass diverged"
    # The warm pass must really have been served from cache, and the
    # cumulative counters must agree with the per-send log.
    stats = cached.result_cache.stats()
    assert stats["hits"] > 0
    assert stats["evictions"] == 0  # nothing evicts at this scale
    assert sum(r.cache_hits for r in cached.send_log) == stats["hits"]
    assert sum(r.cache_misses for r in cached.send_log) == stats["misses"]


# ----------------------------------------------------------------------
# 2. Write freshness: interleaved persist() between repeated reads
# ----------------------------------------------------------------------
STALE_RECORDS = 120
TARGET = "cache_stale"


def _extra_records(n: int = 15, start: int = STALE_RECORDS):
    """Appendable rows whose primary keys don't collide with the base."""
    extra = wisconsin_records(n)
    for offset, record in enumerate(extra):
        record["unique1"] = start + offset
        record["unique2"] = start + offset
    return extra


def _count(connector, collection: str) -> int:
    return len(PolyFrame("Bench", collection, connector).collect().to_records())


def _stale_script(backend: str, db, connector) -> list[int]:
    """Reads interleaved with writes; returns every count observed."""
    df = PolyFrame("Bench", "data", connector)
    subset = df[df["ten"] == 3]
    reads = [_count(connector, "data"), _count(connector, "data")]
    persisted = subset.persist(TARGET, "Bench")
    reads += [
        len(persisted.collect().to_records()),
        len(persisted.collect().to_records()),
    ]
    # The second write, between reads.  Mongo's $out replaces the target
    # and Cypher's repeat persist appends to the label — both through
    # persist() itself.  The SQL engines refuse to re-create an existing
    # container, so they exercise the other invalidation path: a direct
    # engine-level append reported through connector.note_write().
    if backend == "mongodb":
        df[df["ten"] <= 5].persist(TARGET, "Bench")
    elif backend == "neo4j":
        subset.persist(TARGET, "Bench")
    elif backend == "postgres":
        db.insert("Bench.data", _extra_records())
        connector.note_write("Bench.data", "data")
    else:
        db.load("Bench.data", _extra_records())
        connector.note_write("Bench.data", "data")
    reads += [len(persisted.collect().to_records()), _count(connector, "data")]
    return reads


@pytest.mark.parametrize("backend", BACKENDS)
def test_interleaved_persist_never_serves_stale_reads(backend):
    records = wisconsin_records(STALE_RECORDS)
    baseline_db = _build_engine(backend, records)
    baseline = _stale_script(
        backend, baseline_db, _FACTORIES[backend](baseline_db, cache=False)
    )
    cached_db = _build_engine(backend, records)
    connector = _FACTORIES[backend](cached_db, cache=True)
    observed = _stale_script(backend, cached_db, connector)

    assert observed == baseline, f"{backend}: cached reads diverged"
    # Not vacuous: the second write visibly changed what a read returns
    # (the persisted target for the document/graph stores, the source
    # dataset for the appending SQL engines).
    assert baseline[4] != baseline[3] or baseline[5] != baseline[0]
    stats = connector.result_cache.stats()
    assert stats["hits"] > 0, f"{backend}: repeats never hit the cache"
    assert stats["invalidations"] > 0, f"{backend}: writes went unnoticed"


# ----------------------------------------------------------------------
# 3. Randomized interleavings (seeded, reproducible)
# ----------------------------------------------------------------------
def _random_schedule(seed: int, steps: int = 30):
    """A seeded mix of expression reads (repeat-heavy) and writes."""
    rng = random.Random(seed)
    read_ids = [expr.id for expr in EXPRESSIONS if expr.id != 12]
    schedule: list[tuple[str, int]] = []
    recent: list[int] = []
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.15:
            schedule.append(("write", rng.randrange(1_000_000)))
        elif recent and roll < 0.55:
            schedule.append(("read", rng.choice(recent)))  # likely a hit
        else:
            expr_id = rng.choice(read_ids)
            recent.append(expr_id)
            schedule.append(("read", expr_id))
    return schedule


def _replay(schedule, db, connector) -> list:
    df = PolyFrame("Bench", "data", connector)
    df2 = PolyFrame("Bench", "data2", connector)
    exprs = {expr.id: expr for expr in EXPRESSIONS}
    outputs = []
    next_key = STALE_RECORDS
    for op, arg in schedule:
        if op == "read":
            outputs.append(_normalize(exprs[arg].run(df, df2, PARAMS, API)))
        else:
            db.insert("Bench.data", _extra_records(1, start=next_key))
            next_key += 1
            connector.note_write("Bench.data", "data")
            outputs.append(("write", arg))
    return outputs


@pytest.mark.parametrize("seed", [2021, 7, 99])
def test_randomized_read_write_interleavings_match(seed):
    schedule = _random_schedule(seed)
    records = wisconsin_records(STALE_RECORDS)

    baseline_db = _build_engine("postgres", records)
    baseline = _replay(
        schedule, baseline_db, PostgresConnector(baseline_db, cache=False)
    )
    cached_db = _build_engine("postgres", records)
    connector = PostgresConnector(cached_db, cache=True)
    observed = _replay(schedule, cached_db, connector)

    assert observed == baseline, f"seed {seed}: interleaving diverged"
    stats = connector.result_cache.stats()
    assert stats["hits"] > 0, f"seed {seed}: schedule produced no hits"


# ----------------------------------------------------------------------
# 4. Chaos determinism: faults + retries on top of the cache
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ("postgres", "mongodb"))
def test_cache_with_fault_injection_stays_deterministic(backend, engines):
    baseline = _run_expressions(
        _make_connector(backend, engines, level=2, cache=False)
    )
    injector = FaultInjector(seed=7, sleep=lambda _s: None)
    injector.transient_rate(0.1)
    chaotic = _FACTORIES[backend](
        engines[backend],
        optimization_level=2,
        cache=True,
        fault_injector=injector,
        retry_policy=RetryPolicy(max_attempts=5, sleep=lambda _s: None),
    )
    assert _run_expressions(chaotic) == baseline
    assert _run_expressions(chaotic) == baseline
    assert chaotic.result_cache.stats()["hits"] > 0
    # Retried sends really happened and never poisoned the cache.
    assert sum(r.attempts for r in chaotic.send_log) > sum(
        1 for r in chaotic.send_log if r.attempts > 0
    )
