"""Pluggable shard dispatch: serial/thread parity, racing, and stress.

The tentpole guarantee: *how* shard queries run (sequentially on the
calling thread vs. concurrently on a worker pool) must never change what
they answer.  Serial dispatch preserves the seed's semantics; thread
dispatch must be byte-identical to it for all 13 Table III expressions on
every sharded backend, even with N client threads hammering one cluster
through a shared dispatcher.  See ``docs/distributed-execution.md``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import PolyFrame, PostgresConnector
from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.bench.systems import build_cluster_systems
from repro.cluster import GreenplumCluster
from repro.cluster.base import scatter_gather
from repro.cluster.dispatch import (
    SerialDispatcher,
    ThreadPoolDispatcher,
    resolve_dispatcher,
)
from repro.cluster.merge import spec_for_select
from repro.cluster.replica import HedgePolicy
from repro.errors import ReproError, TransientBackendError
from repro.obs import Tracer
from repro.sqlengine.parser import parse
from repro.sqlengine.result import ResultSet

NUM_NODES = 3
NUM_RECORDS = 150
STRESS_NODES = 4
STRESS_CLIENTS = 4


def canonical(value):
    """Byte-comparable form of an expression result."""
    value = DataFrameAPI().materialize(value)
    if hasattr(value, "to_records"):
        return repr(value.to_records())
    return repr(value)


def run_all_expressions(systems) -> dict[tuple[str, int], str]:
    params = benchmark_params()
    api = DataFrameAPI()
    answers: dict[tuple[str, int], str] = {}
    for name, system in systems.items():
        df, df2 = system.create_frames()
        for expr in EXPRESSIONS:
            try:
                answers[(name, expr.id)] = canonical(expr.run(df, df2, params, api))
            except Exception as exc:  # noqa: BLE001 - errors must match too
                answers[(name, expr.id)] = f"{type(exc).__name__}"
    return answers


# ----------------------------------------------------------------------
# Dispatcher unit behaviour
# ----------------------------------------------------------------------
class TestResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH", raising=False)
        assert isinstance(resolve_dispatcher(None), SerialDispatcher)

    def test_env_selects_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH", "threads")
        assert isinstance(resolve_dispatcher(None), ThreadPoolDispatcher)

    def test_explicit_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH", "threads")
        assert isinstance(resolve_dispatcher("serial"), SerialDispatcher)

    def test_instance_passes_through(self):
        dispatcher = ThreadPoolDispatcher(max_workers=2)
        assert resolve_dispatcher(dispatcher) is dispatcher

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            resolve_dispatcher("fibers")

    def test_cluster_accepts_dispatch_kwarg(self):
        cluster = GreenplumCluster(2, dispatch="threads")
        assert isinstance(cluster.dispatcher, ThreadPoolDispatcher)


class TestMapShards:
    def test_results_in_task_order(self):
        dispatcher = ThreadPoolDispatcher(max_workers=4)
        delays = [0.03, 0.0, 0.02, 0.01]

        def make(i):
            def task():
                time.sleep(delays[i])
                return i
            return task

        assert dispatcher.map_shards([make(i) for i in range(4)]) == [0, 1, 2, 3]

    def test_lowest_index_error_wins(self):
        dispatcher = ThreadPoolDispatcher(max_workers=4)

        def ok():
            return 1

        def fail_fast():
            raise ValueError("shard 3")

        def fail_slow():
            time.sleep(0.01)
            raise KeyError("shard 1")

        with pytest.raises(KeyError):
            dispatcher.map_shards([ok, fail_slow, ok, fail_fast])

    def test_map_runs_concurrently(self):
        dispatcher = ThreadPoolDispatcher(max_workers=4)
        barrier = threading.Barrier(4, timeout=5.0)

        def task():
            barrier.wait()  # deadlocks unless all four run at once
            return True

        assert dispatcher.map_shards([task] * 4) == [True] * 4


class TestRace:
    def test_fast_primary_never_hedges(self):
        dispatcher = ThreadPoolDispatcher()
        race = dispatcher.race(lambda: "fast", lambda: "hedge", 0.5)
        assert race.primary == "fast"
        assert not race.hedged and race.primary_first

    def test_slow_primary_hedges_and_loses(self):
        dispatcher = ThreadPoolDispatcher()

        def slow():
            time.sleep(0.2)
            return "slow"

        race = dispatcher.race(slow, lambda: "hedge", 0.01)
        assert race.hedged
        assert race.hedge_value == "hedge"
        assert not race.primary_first
        assert race.primary == "slow"  # primary still completes and reports

    def test_primary_error_propagates_after_join(self):
        dispatcher = ThreadPoolDispatcher()

        def broken():
            time.sleep(0.05)
            raise TransientBackendError("boom")

        with pytest.raises(TransientBackendError):
            dispatcher.race(broken, lambda: "hedge", 0.01)


# ----------------------------------------------------------------------
# Coordinator semantics under each dispatcher
# ----------------------------------------------------------------------
def _shard_result(count: int, elapsed: float = 0.001) -> ResultSet:
    return ResultSet(records=[{"count": count}], elapsed_seconds=elapsed)


COUNT_SPEC = spec_for_select(parse("SELECT COUNT(*) FROM (SELECT * FROM t) x", "sql"))


class TestScatterGatherDispatch:
    def test_thread_dispatch_matches_serial_answers(self):
        def run(shard: int) -> ResultSet:
            return _shard_result(shard + 1)

        serial = scatter_gather(run, 4, COUNT_SPEC, dispatcher="serial")
        threaded = scatter_gather(run, 4, COUNT_SPEC, dispatcher="threads")
        assert serial.records == threaded.records == [{"count": 10}]
        assert serial.stats.dispatch_mode == "serial"
        assert serial.stats.parallelism == 1
        assert threaded.stats.dispatch_mode == "threads"
        assert threaded.stats.parallelism == 4

    def test_thread_mode_reports_measured_wall_time(self):
        def run(shard: int) -> ResultSet:
            time.sleep(0.05)
            return _shard_result(1, elapsed=10.0)  # absurd simulated time

        result = scatter_gather(run, 4, COUNT_SPEC, dispatcher="threads")
        # Measured, not simulated: four 50ms sleeps overlap on the pool.
        assert result.elapsed_seconds < 1.0

    def test_serial_mode_keeps_simulated_wall_time(self):
        def run(shard: int) -> ResultSet:
            return _shard_result(1, elapsed=10.0)

        result = scatter_gather(run, 4, COUNT_SPEC, dispatcher="serial")
        assert result.elapsed_seconds > 10.0

    def test_non_connector_error_closes_shard_span_honestly(self):
        tracer = Tracer()

        def run(shard: int) -> ResultSet:
            if shard == 1:
                raise ValueError("malformed query")
            return _shard_result(1)

        with pytest.raises(ValueError):
            with tracer.span("root"):
                scatter_gather(
                    run, 2, COUNT_SPEC, backend_name="gp", dispatcher="serial"
                )
        (root,) = tracer.spans
        failed = [s for s in root.find("shard") if s.attributes["shard"] == 1]
        assert failed, "failing shard recorded no span"
        assert failed[0].attributes["outcome"] == "error"
        assert failed[0].attributes["attempts"] == 1


# ----------------------------------------------------------------------
# Byte-identity: serial vs threads across all expressions and backends
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dispatch_answers():
    return {
        mode: run_all_expressions(
            build_cluster_systems(NUM_NODES, NUM_RECORDS, dispatch=mode)
        )
        for mode in ("serial", "threads")
    }


def test_threads_byte_identical_to_serial(dispatch_answers):
    assert dispatch_answers["threads"] == dispatch_answers["serial"]


def test_serial_covers_every_cell(dispatch_answers):
    # 13 expressions x 3 sharded backends; the only non-answer is the
    # sharded-MongoDB join (expression 12), exactly as in the paper.
    serial = dispatch_answers["serial"]
    assert len(serial) == 13 * 3
    unsupported = {k for k, v in serial.items() if v == "UnsupportedOperationError"}
    assert unsupported == {("PolyFrame-MongoDB", 12)}


# ----------------------------------------------------------------------
# Thread-mode hedging is a real race
# ----------------------------------------------------------------------
def test_thread_dispatch_hedge_race_rescues_slow_replica():
    cluster = GreenplumCluster(
        2,
        query_prep_overhead=0.0,
        replication_factor=2,
        hedge=HedgePolicy(threshold_seconds=0.02),
        dispatch="threads",
    )
    cluster.create_table("t")
    cluster.insert("t", [{"v": i} for i in range(40)])
    # Slow node 0 for real: wall-clock latency, not charged simulation.
    original = cluster.store.engine

    def slow_engine(shard: int, node: int):
        engine = original(shard, node)
        if node == 0:
            run = engine.execute

            def delayed(query_text: str):
                time.sleep(0.2)
                return run(query_text)

            engine = type("Slow", (), {"execute": staticmethod(delayed)})()
        return engine

    cluster.store.engine = slow_engine
    result = cluster.execute("SELECT COUNT(*) FROM (SELECT * FROM t) x")
    assert result.scalar() == 40
    assert result.stats.hedges >= 1
    assert result.stats.hedge_wins >= 1
    # Shard 0's primary lives on the slow node 0; the winning hedge means
    # its replica on node 1 actually served the read.
    assert result.served_by[0] == 1


# ----------------------------------------------------------------------
# Concurrency stress: N client threads on one shared thread dispatcher
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["threads"])
def test_concurrent_clients_stay_isolated(mode):
    dispatcher = ThreadPoolDispatcher()
    systems = build_cluster_systems(
        STRESS_NODES,
        NUM_RECORDS,
        which=("PolyFrame-Greenplum",),
        dispatch=dispatcher,
    )
    cluster = systems["PolyFrame-Greenplum"].engine
    baseline = run_all_expressions(
        build_cluster_systems(
            STRESS_NODES, NUM_RECORDS, which=("PolyFrame-Greenplum",), dispatch="serial"
        )
    )
    expected = {
        expr_id: answer for (_, expr_id), answer in baseline.items()
    }

    params = benchmark_params()
    errors: list[BaseException] = []
    client_answers: list[dict[int, str]] = [{} for _ in range(STRESS_CLIENTS)]
    client_tracers: list[Tracer] = [Tracer() for _ in range(STRESS_CLIENTS)]

    def client(idx: int) -> None:
        try:
            api = DataFrameAPI()
            connector = PostgresConnector(cluster)
            connector.set_tracer(client_tracers[idx])
            df = PolyFrame("Bench", "data", connector)
            df2 = PolyFrame("Bench", "data2", connector)
            for expr in EXPRESSIONS:
                client_answers[idx][expr.id] = canonical(
                    expr.run(df, df2, params, api)
                )
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"client-{i}")
        for i in range(STRESS_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors

    # Every client got the serial answers, byte for byte.
    for answers in client_answers:
        assert answers == expected

    # And no span-tree interleaving: each client's dispatch spans hold
    # exactly its own query's shard spans — indices 0..3 exactly once.
    for tracer in client_tracers:
        assert tracer.spans, "client recorded no spans"
        for root in tracer.spans:
            for span in root.walk():
                if span.name != "dispatch":
                    continue
                shard_ids = sorted(
                    s.attributes["shard"]
                    for s in span.walk()
                    if s.name == "shard"
                )
                if shard_ids:
                    assert shard_ids == list(range(STRESS_NODES))
