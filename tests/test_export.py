"""Measurement export round-trip tests."""

from __future__ import annotations

import json

from repro.bench.export import from_json, measurements_to_dicts, to_csv, to_json
from repro.bench.runner import Measurement


def sample():
    return [
        Measurement("Pandas", "XS", 1, "ok", 0.05, 0.001),
        Measurement(
            "PolyFrame-Neo4j", "XL", 13, "ok", 0.0001, 0.02,
            compile_ms=0.4, nesting_depth=3,
        ),
        Measurement("Pandas", "M", 1, "oom", 0.3, 0.0),
        Measurement(
            "PolyFrame-PostgreSQL", "S", 4, "ok", 0.0002, 0.004,
            rows_per_sec=250_000.0, exec_engine="vector",
            dispatch_mode="threads", parallelism=4,
            peak_mem_bytes=65_536, spill_bytes=1_048_576,
            queue_wait_ms=1.5, deadline_budget_ms=250.0, cancelled=2,
        ),
    ]


def test_dict_rows_include_total():
    rows = measurements_to_dicts(sample())
    assert rows[0]["total_seconds"] == rows[0]["creation_seconds"] + rows[0]["expression_seconds"]
    assert rows[2]["status"] == "oom"


def test_json_round_trip():
    exported = to_json(sample())
    parsed = json.loads(exported)
    assert len(parsed) == 4
    rehydrated = from_json(exported)
    assert rehydrated == sample()


def test_csv_has_header_and_rows():
    text = to_csv(sample())
    lines = text.strip().splitlines()
    assert lines[0].startswith("system,dataset,expression_id")
    assert lines[0].endswith(
        "compile_ms,nesting_depth,rows_per_sec,exec_engine,dispatch_mode,"
        "parallelism,peak_mem_bytes,spill_bytes,"
        "cache_hits,cache_misses,singleflight_waits,"
        "queue_wait_ms,deadline_budget_ms,cancelled"
    )
    assert len(lines) == 5
    assert "PolyFrame-Neo4j" in lines[2]


def test_compile_columns_round_trip():
    rows = measurements_to_dicts(sample())
    assert rows[1]["compile_ms"] == 0.4
    assert rows[1]["nesting_depth"] == 3
    assert rows[0]["compile_ms"] == 0.0  # eager baseline: no compilation
    rehydrated = from_json(to_json(sample()))
    assert rehydrated[1].compile_ms == 0.4
    assert rehydrated[1].nesting_depth == 3


def test_throughput_columns_round_trip():
    rows = measurements_to_dicts(sample())
    assert rows[3]["rows_per_sec"] == 250_000.0
    assert rows[3]["exec_engine"] == "vector"
    assert rows[0]["exec_engine"] == ""  # eager baseline: no engine label
    rehydrated = from_json(to_json(sample()))
    assert rehydrated[3].rows_per_sec == 250_000.0
    assert rehydrated[3].exec_engine == "vector"
    assert rehydrated[3].dispatch_mode == "threads"
    assert rehydrated[3].parallelism == 4
    # Older exports without the columns rehydrate with defaults.
    legacy = json.loads(to_json(sample()[:1]))
    for row in legacy:
        del row["rows_per_sec"], row["exec_engine"]
    assert from_json(json.dumps(legacy))[0].rows_per_sec == 0.0


def test_deadline_columns_round_trip():
    rows = measurements_to_dicts(sample())
    assert rows[3]["queue_wait_ms"] == 1.5
    assert rows[3]["deadline_budget_ms"] == 250.0
    assert rows[3]["cancelled"] == 2
    assert rows[0]["queue_wait_ms"] == 0.0  # deadlines/admission off by default
    rehydrated = from_json(to_json(sample()))
    assert rehydrated[3].queue_wait_ms == 1.5
    assert rehydrated[3].deadline_budget_ms == 250.0
    assert rehydrated[3].cancelled == 2
    # Older exports without the columns rehydrate with defaults.
    legacy = json.loads(to_json(sample()[:1]))
    for row in legacy:
        del row["queue_wait_ms"], row["deadline_budget_ms"], row["cancelled"]
    assert from_json(json.dumps(legacy))[0].cancelled == 0


def test_memory_columns_round_trip():
    rows = measurements_to_dicts(sample())
    assert rows[3]["peak_mem_bytes"] == 65_536
    assert rows[3]["spill_bytes"] == 1_048_576
    assert rows[0]["peak_mem_bytes"] == 0  # eager baseline: no accounting
    rehydrated = from_json(to_json(sample()))
    assert rehydrated[3].peak_mem_bytes == 65_536
    assert rehydrated[3].spill_bytes == 1_048_576
    # Older exports without the columns rehydrate with defaults.
    legacy = json.loads(to_json(sample()[:1]))
    for row in legacy:
        del row["peak_mem_bytes"], row["spill_bytes"]
    assert from_json(json.dumps(legacy))[0].spill_bytes == 0
