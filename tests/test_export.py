"""Measurement export round-trip tests."""

from __future__ import annotations

import json

from repro.bench.export import from_json, measurements_to_dicts, to_csv, to_json
from repro.bench.runner import Measurement


def sample():
    return [
        Measurement("Pandas", "XS", 1, "ok", 0.05, 0.001),
        Measurement(
            "PolyFrame-Neo4j", "XL", 13, "ok", 0.0001, 0.02,
            compile_ms=0.4, nesting_depth=3,
        ),
        Measurement("Pandas", "M", 1, "oom", 0.3, 0.0),
    ]


def test_dict_rows_include_total():
    rows = measurements_to_dicts(sample())
    assert rows[0]["total_seconds"] == rows[0]["creation_seconds"] + rows[0]["expression_seconds"]
    assert rows[2]["status"] == "oom"


def test_json_round_trip():
    exported = to_json(sample())
    parsed = json.loads(exported)
    assert len(parsed) == 3
    rehydrated = from_json(exported)
    assert rehydrated == sample()


def test_csv_has_header_and_rows():
    text = to_csv(sample())
    lines = text.strip().splitlines()
    assert lines[0].startswith("system,dataset,expression_id")
    assert lines[0].endswith("compile_ms,nesting_depth")
    assert len(lines) == 4
    assert "PolyFrame-Neo4j" in lines[2]


def test_compile_columns_round_trip():
    rows = measurements_to_dicts(sample())
    assert rows[1]["compile_ms"] == 0.4
    assert rows[1]["nesting_depth"] == 3
    assert rows[0]["compile_ms"] == 0.0  # eager baseline: no compilation
    rehydrated = from_json(to_json(sample()))
    assert rehydrated[1].compile_ms == 0.4
    assert rehydrated[1].nesting_depth == 3
