"""Wisconsin loader tests: every backend gets the benchmark's index set."""

from __future__ import annotations

import pytest

from repro.docstore import MongoDatabase
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB
from repro.wisconsin import (
    BENCHMARK_INDEX_COLUMNS,
    load_asterixdb,
    load_mongodb,
    load_neo4j,
    load_postgres,
    wisconsin_records,
)
from repro.wisconsin.loaders import PRIMARY_KEY

RECORDS = wisconsin_records(200)


class TestAsterixLoader:
    def test_loads_and_indexes(self):
        db = AsterixDB(query_prep_overhead=0.0)
        count = load_asterixdb(db, "B", "data", RECORDS)
        assert count == 200
        table = db.catalog.table("B.data")
        assert table.primary_key == PRIMARY_KEY
        for column in BENCHMARK_INDEX_COLUMNS:
            assert table.index_on(column) is not None

    def test_absent_values_not_indexed(self):
        db = AsterixDB(query_prep_overhead=0.0)
        load_asterixdb(db, "B", "data", RECORDS)
        index = db.catalog.table("B.data").index_on("tenPercent")
        missing = sum(1 for record in RECORDS if "tenPercent" not in record)
        assert len(index.tree) == 200 - missing

    def test_reuses_existing_dataverse(self):
        db = AsterixDB(query_prep_overhead=0.0)
        db.create_dataverse("B")
        load_asterixdb(db, "B", "data", RECORDS)
        assert db.row_count("B.data") == 200

    def test_indexes_optional(self):
        db = AsterixDB(query_prep_overhead=0.0)
        load_asterixdb(db, "B", "data", RECORDS, indexes=False)
        table = db.catalog.table("B.data")
        assert table.index_on("unique1") is None
        assert table.index_on(PRIMARY_KEY) is not None  # PK always indexed


class TestPostgresLoader:
    def test_missing_becomes_explicit_null(self):
        db = SQLDatabase()
        load_postgres(db, "B", "data", RECORDS)
        missing = sum(1 for record in RECORDS if "tenPercent" not in record)
        result = db.execute(
            'SELECT COUNT(*) FROM B.data t WHERE "tenPercent" IS NULL'
        )
        assert result.scalar() == missing

    def test_nulls_present_in_index(self):
        db = SQLDatabase()
        load_postgres(db, "B", "data", RECORDS)
        index = db.catalog.table("B.data").index_on("tenPercent")
        assert len(index.tree) == 200  # every row, including NULLs

    def test_stats_analyzed(self):
        db = SQLDatabase()
        load_postgres(db, "B", "data", RECORDS)
        stats = db.catalog.table("B.data").stats
        assert stats.row_count == 200
        assert stats.columns["unique1"].max_value == 199


class TestMongoLoader:
    def test_missing_attributes_stay_missing(self):
        db = MongoDatabase(query_prep_overhead=0.0)
        load_mongodb(db, "data", RECORDS)
        missing = sum(1 for record in RECORDS if "tenPercent" not in record)
        result = db.aggregate("data", [
            {"$match": {"$expr": {"$lt": ["$tenPercent", None]}}},
            {"$count": "n"},
        ])
        assert result.records == [{"n": missing}]

    def test_indexes_created(self):
        db = MongoDatabase(query_prep_overhead=0.0)
        load_mongodb(db, "data", RECORDS)
        for column in BENCHMARK_INDEX_COLUMNS:
            assert db.collection("data").has_index(column)


class TestNeo4jLoader:
    def test_nodes_and_count_store(self):
        db = Neo4jDatabase(query_prep_overhead=0.0)
        load_neo4j(db, "data", RECORDS)
        assert db.node_count("data") == 200

    def test_string_attributes_in_string_store(self):
        db = Neo4jDatabase(query_prep_overhead=0.0)
        load_neo4j(db, "data", RECORDS)
        # 3 string attributes per record land in the string store.
        assert len(db.store.strings) == 600

    def test_indexes_created(self):
        db = Neo4jDatabase(query_prep_overhead=0.0)
        load_neo4j(db, "data", RECORDS)
        for column in BENCHMARK_INDEX_COLUMNS:
            assert db.store.has_index("data", column)
