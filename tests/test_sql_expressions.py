"""Unit tests for the SQL/SQL++ expression evaluator (three-valued logic)."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError, PlanningError
from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    IsAbsent,
    Literal,
    Star,
    UnaryOp,
)
from repro.sqlengine.expressions import Evaluator, apply_scalar_function
from repro.sqlengine.expr_utils import (
    columns_used,
    conjoin,
    conjuncts,
    match_column_literal,
    rewrite_qualifier,
)
from repro.storage.keys import SENTINEL_MISSING

SQL = Evaluator("sql")
SQLPP = Evaluator("sqlpp")
ROW = {"t": {"a": 5, "b": None, "s": "Hi"}}


def col(name, qualifier="t"):
    return ColumnRef(name, qualifier)


class TestResolution:
    def test_qualified_access(self):
        assert SQL.evaluate(col("a"), ROW) == 5

    def test_missing_key_sql_is_null(self):
        assert SQL.evaluate(col("zzz"), ROW) is None

    def test_missing_key_sqlpp_is_missing(self):
        assert SQLPP.evaluate(col("zzz"), ROW) is SENTINEL_MISSING

    def test_bare_binding_returns_record(self):
        assert SQL.evaluate(ColumnRef("t"), ROW) == ROW["t"]

    def test_unqualified_column_searches_bindings(self):
        assert SQL.evaluate(ColumnRef("a"), ROW) == 5

    def test_unknown_binding_raises(self):
        with pytest.raises(ExecutionError):
            SQL.evaluate(col("a", "nope"), ROW)

    def test_star_rejected_outside_select(self):
        with pytest.raises(PlanningError):
            SQL.evaluate(Star(), ROW)


class TestThreeValuedLogic:
    def test_null_comparison_is_null(self):
        expr = BinaryOp("=", col("b"), Literal(1))
        assert SQL.evaluate(expr, ROW) is None
        assert not SQL.truthy(SQL.evaluate(expr, ROW))

    def test_missing_propagates_in_sqlpp(self):
        expr = BinaryOp("=", col("zzz"), Literal(1))
        assert SQLPP.evaluate(expr, ROW) is SENTINEL_MISSING

    def test_kleene_and(self):
        true = Literal(True)
        false = Literal(False)
        null = Literal(None)
        assert SQL.evaluate(BinaryOp("AND", false, null), ROW) is False
        assert SQL.evaluate(BinaryOp("AND", true, null), ROW) is None
        assert SQL.evaluate(BinaryOp("AND", true, true), ROW) is True

    def test_kleene_or(self):
        true = Literal(True)
        false = Literal(False)
        null = Literal(None)
        assert SQL.evaluate(BinaryOp("OR", true, null), ROW) is True
        assert SQL.evaluate(BinaryOp("OR", false, null), ROW) is None
        assert SQL.evaluate(BinaryOp("OR", false, false), ROW) is False

    def test_not_of_null(self):
        assert SQL.evaluate(UnaryOp("NOT", Literal(None)), ROW) is None
        assert SQL.evaluate(UnaryOp("NOT", Literal(True)), ROW) is False

    def test_is_absent_modes(self):
        b_null = IsAbsent(col("b"), "null")
        z_missing = IsAbsent(col("zzz"), "missing")
        z_unknown = IsAbsent(col("zzz"), "unknown")
        b_unknown = IsAbsent(col("b"), "unknown")
        # SQL collapses both absent states into NULL.
        assert SQL.evaluate(b_null, ROW) is True
        assert SQL.evaluate(IsAbsent(col("zzz"), "null"), ROW) is True
        # SQL++ distinguishes them.
        assert SQLPP.evaluate(b_null, ROW) is True
        assert SQLPP.evaluate(IsAbsent(col("zzz"), "null"), ROW) is False
        assert SQLPP.evaluate(z_missing, ROW) is True
        assert SQLPP.evaluate(z_unknown, ROW) is True
        assert SQLPP.evaluate(b_unknown, ROW) is True

    def test_negated_is_absent(self):
        assert SQL.evaluate(IsAbsent(col("a"), "null", negated=True), ROW) is True


class TestOperators:
    def test_arithmetic(self):
        assert SQL.evaluate(BinaryOp("+", col("a"), Literal(2)), ROW) == 7
        assert SQL.evaluate(BinaryOp("%", col("a"), Literal(2)), ROW) == 1

    def test_division_by_zero_is_null(self):
        assert SQL.evaluate(BinaryOp("/", col("a"), Literal(0)), ROW) is None

    def test_string_concat(self):
        expr = BinaryOp("||", col("s"), Literal("!"))
        assert SQL.evaluate(expr, ROW) == "Hi!"

    def test_type_error_comparison(self):
        with pytest.raises(ExecutionError):
            SQL.evaluate(BinaryOp(">", col("s"), Literal(1)), ROW)

    def test_unary_minus(self):
        assert SQL.evaluate(UnaryOp("-", col("a")), ROW) == -5
        assert SQL.evaluate(UnaryOp("-", col("b")), ROW) is None

    def test_scalar_functions(self):
        assert SQL.evaluate(FuncCall("UPPER", (col("s"),)), ROW) == "HI"
        assert SQL.evaluate(FuncCall("LENGTH", (col("s"),)), ROW) == 2
        assert SQL.evaluate(FuncCall("ABS", (UnaryOp("-", col("a")),)), ROW) == 5
        # NULL argument → NULL result.
        assert SQL.evaluate(FuncCall("UPPER", (col("b"),)), ROW) is None

    def test_aggregate_in_scalar_context_rejected(self):
        with pytest.raises(PlanningError):
            SQL.evaluate(FuncCall("MAX", (col("a"),)), ROW)

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            apply_scalar_function("WHATEVER", [1])

    def test_function_library(self):
        assert apply_scalar_function("TO_INT", ["3.7"]) == 3
        assert apply_scalar_function("TO_STRING", [5]) == "5"
        assert apply_scalar_function("SUBSTR", ["hello", 1, 3]) == "ell"
        assert apply_scalar_function("TRIM", ["  x "]) == "x"
        assert apply_scalar_function("CONCAT", ["a", 1, "b"]) == "a1b"
        assert apply_scalar_function("ROUND", [3.14159, 2]) == 3.14
        assert apply_scalar_function("FLOOR", [3.9]) == 3
        assert apply_scalar_function("CEIL", [3.1]) == 4
        assert apply_scalar_function("SQRT", [9]) == 3.0


class TestExprUtils:
    def test_conjuncts_roundtrip(self):
        a = BinaryOp("=", col("a"), Literal(1))
        b = BinaryOp("=", col("b"), Literal(2))
        c = BinaryOp("=", col("s"), Literal("x"))
        tree = BinaryOp("AND", BinaryOp("AND", a, b), c)
        parts = conjuncts(tree)
        assert parts == [a, b, c]
        assert conjuncts(conjoin(parts)) == parts
        assert conjoin([]) is None

    def test_rewrite_qualifier(self):
        expr = BinaryOp("=", col("a", "new"), Literal(1))
        out = rewrite_qualifier(expr, "new", "old")
        assert out.left.qualifier == "old"
        # bare alias refs rename too
        bare = ColumnRef("new")
        assert rewrite_qualifier(bare, "new", "old") == ColumnRef("old")

    def test_columns_used(self):
        expr = BinaryOp(
            "AND",
            BinaryOp("=", col("a"), Literal(1)),
            IsAbsent(ColumnRef("x"), "null"),
        )
        assert columns_used(expr) == {("t", "a"), (None, "x")}

    def test_match_column_literal(self):
        assert match_column_literal(BinaryOp("=", col("a"), Literal(3))) == ("=", "t", "a", 3)
        # flipped side normalizes the operator
        assert match_column_literal(BinaryOp("<", Literal(3), col("a"))) == (">", "t", "a", 3)
        assert match_column_literal(BinaryOp("=", col("a"), col("b"))) is None
        assert match_column_literal(Literal(1)) is None
