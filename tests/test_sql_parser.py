"""Lexer and parser tests for the SQL / SQL++ front end."""

from __future__ import annotations

import pytest

from repro.errors import LexerError, ParseError
from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    IsAbsent,
    JoinRef,
    Literal,
    SelectQuery,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.parser import parse


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT value FROM t")
        kinds = [(t.kind, t.upper) for t in tokens[:-1]]
        assert kinds[0] == ("KEYWORD", "SELECT")
        assert kinds[2] == ("KEYWORD", "FROM")

    def test_string_literal_with_escape(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].kind == "STRING" and tokens[1].text == "it's"

    def test_double_quoted_identifier(self):
        tokens = tokenize('SELECT "twentyPercent"')
        assert tokens[1].kind == "IDENT" and tokens[1].text == "twentyPercent"

    def test_backtick_identifier(self):
        tokens = tokenize("SELECT `lang`")
        assert tokens[1].kind == "IDENT" and tokens[1].text == "lang"

    def test_numbers(self):
        tokens = tokenize("SELECT 42, 3.14")
        assert tokens[1].text == "42"
        assert tokens[3].text == "3.14"

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- comment\nFROM t")
        assert any(t.is_keyword("FROM") for t in tokens)

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("SELECT 'oops")

    def test_unknown_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @")

    def test_two_char_operators(self):
        tokens = tokenize("a <= b >= c != d <> e")
        ops = [t.text for t in tokens if t.kind == "OP"]
        assert ops == ["<=", ">=", "!=", "<>"]


class TestParserBasics:
    def test_simple_select(self):
        query = parse("SELECT * FROM Test.Users t")
        assert isinstance(query, SelectQuery)
        assert isinstance(query.items[0].expr, Star)
        assert query.from_item == TableRef("Test.Users", "t")

    def test_projection_with_aliases(self):
        query = parse("SELECT t.name AS n, t.age age2 FROM t")
        assert query.items[0].alias == "n"
        assert query.items[1].alias == "age2"
        assert query.items[0].expr == ColumnRef("name", "t")

    def test_qualified_star(self):
        query = parse("SELECT t.* FROM t")
        assert query.items[0].expr == Star("t")

    def test_nested_subquery(self):
        query = parse("SELECT * FROM (SELECT * FROM data) t")
        assert isinstance(query.from_item, SubqueryRef)
        assert query.from_item.alias == "t"
        inner = query.from_item.query
        assert inner.from_item == TableRef("data", None)

    def test_deeply_nested(self):
        query = parse(
            "SELECT * FROM (SELECT * FROM (SELECT * FROM data) a) b"
        )
        assert isinstance(query.from_item.query.from_item, SubqueryRef)

    def test_join(self):
        query = parse(
            "SELECT l.*, r.* FROM a l INNER JOIN b r ON l.k = r.k"
        )
        join = query.from_item
        assert isinstance(join, JoinRef)
        assert join.kind == "inner"
        assert join.condition == BinaryOp("=", ColumnRef("k", "l"), ColumnRef("k", "r"))

    def test_comma_join_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM a, b")

    def test_where_group_order_limit(self):
        query = parse(
            "SELECT a, COUNT(b) FROM t WHERE a > 1 GROUP BY a ORDER BY a DESC LIMIT 5 OFFSET 2"
        )
        assert query.where is not None
        assert query.group_by == (ColumnRef("a"),)
        assert query.order_by[0].descending
        assert query.limit == 5 and query.offset == 2

    def test_trailing_semicolon(self):
        parse("SELECT * FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t garbage junk")

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t LIMIT x")


class TestExpressions:
    def parse_where(self, text):
        return parse(f"SELECT * FROM t WHERE {text}").where

    def test_precedence_or_and(self):
        expr = self.parse_where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "AND"

    def test_not(self):
        expr = self.parse_where("NOT a = 1")
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"

    def test_arithmetic_precedence(self):
        expr = self.parse_where("a + b * 2 = 7")
        assert expr.op == "="
        assert expr.left.op == "+"
        assert expr.left.right.op == "*"

    def test_parentheses(self):
        expr = self.parse_where("(a + b) * 2 = 7")
        assert expr.left.op == "*"

    def test_between_desugars(self):
        expr = self.parse_where("a BETWEEN 1 AND 5")
        assert expr.op == "AND"
        assert expr.left.op == ">=" and expr.right.op == "<="

    def test_is_null(self):
        expr = self.parse_where("a IS NULL")
        assert expr == IsAbsent(ColumnRef("a"), "null", False)
        expr = self.parse_where("a IS NOT NULL")
        assert expr.negated

    def test_unary_minus(self):
        expr = self.parse_where("a = -5")
        assert isinstance(expr.right, UnaryOp)

    def test_function_calls(self):
        query = parse("SELECT UPPER(name), COUNT(*) FROM t")
        assert query.items[0].expr == FuncCall("UPPER", (ColumnRef("name"),))
        assert query.items[1].expr == FuncCall("COUNT", star=True)

    def test_literals(self):
        query = parse("SELECT 1, 2.5, 'x', TRUE, FALSE, NULL FROM t")
        values = [item.expr for item in query.items]
        assert values == [
            Literal(1), Literal(2.5), Literal("x"),
            Literal(True), Literal(False), Literal(None),
        ]

    def test_string_concat_operator(self):
        expr = self.parse_where("a || b = 'ab'")
        assert expr.left.op == "||"


class TestDialects:
    def test_select_value_requires_sqlpp(self):
        parse("SELECT VALUE t FROM data t", dialect="sqlpp")
        # In plain SQL, VALUE is just an identifier-like token → parse error
        # because it is a keyword not usable there.
        query = parse("SELECT VALUE FROM data t", dialect="sql")
        assert not query.select_value  # parsed as a column named VALUE

    def test_is_unknown_only_in_sqlpp(self):
        query = parse("SELECT * FROM t WHERE a IS UNKNOWN", dialect="sqlpp")
        assert query.where.mode == "unknown"
        with pytest.raises(ParseError):
            parse("SELECT * FROM t WHERE a IS UNKNOWN", dialect="sql")

    def test_is_missing_only_in_sqlpp(self):
        query = parse("SELECT * FROM t WHERE a IS MISSING", dialect="sqlpp")
        assert query.where.mode == "missing"

    def test_unknown_dialect_rejected(self):
        with pytest.raises(ValueError):
            parse("SELECT 1", dialect="mystery")

    def test_paper_table1_sqlpp_chain(self):
        """The exact op-6 SQL++ query from the paper's appendix parses."""
        query = parse(
            """SELECT t.name, t.address
            FROM (SELECT VALUE t
            FROM (SELECT VALUE t
            FROM Test.Users t) t
            WHERE t.lang = 'en') t
            LIMIT 10;""",
            dialect="sqlpp",
        )
        assert query.limit == 10
        assert query.from_item.query.where is not None

    def test_is_aggregate_detection(self):
        assert parse("SELECT COUNT(*) FROM t").is_aggregate()
        assert parse("SELECT a FROM t GROUP BY a").is_aggregate()
        assert not parse("SELECT a FROM t").is_aggregate()
        assert parse("SELECT MAX(a) + 1 FROM t").is_aggregate()
