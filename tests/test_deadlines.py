"""End-to-end deadline and cooperative-cancellation tests.

Every scenario is deterministic: deadlines take a fake monotonic clock,
retry sleeps advance that same clock (so backoff consumes simulated
budget, not wall time), and fault injectors own seeded RNGs.  The
acceptance bar from ``docs/deadlines.md``: under chaos, every query
either completes within its budget or fails fast with
:class:`~repro.errors.QueryTimeoutError` / :class:`~repro.errors.OverloadError`
— never a hang, never a silently late answer.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import PolyFrame, PostgresConnector
from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.cluster import GreenplumCluster
from repro.cluster.base import scatter_gather
from repro.cluster.dispatch import ThreadPoolDispatcher
from repro.cluster.merge import MergeSpec
from repro.cluster.replica import HedgePolicy
from repro.eager import frame_from_records
from repro.errors import (
    ExecutionError,
    OverloadError,
    QueryCancelledError,
    QueryTimeoutError,
    TransientBackendError,
)
from repro.obs import metrics
from repro.obs.trace import get_tracer
from repro.resilience import FaultInjector, RetryPolicy, no_sleep
from repro.resilience.admission import AdmissionController
from repro.resilience.deadline import (
    ENV_DEADLINE,
    CancellationToken,
    Deadline,
    action_scope,
    budget_scope,
    current_deadline,
    current_token,
    resolve_deadline_seconds,
)
from repro.sqlengine import SQLDatabase
from repro.sqlengine.result import ResultSet
from repro.wisconsin import loaders, wisconsin_records

QUERY = "SELECT COUNT(*) FROM t x"
COUNT_QUERY = "SELECT COUNT(*) FROM Bench.data"

#: Operator profiling under the CI trace matrix (``REPRO_TRACE=1``)
#: materializes streaming sends — the engines' documented fallback — so
#: tests asserting *real* streaming have nothing to observe there.
needs_real_streaming = pytest.mark.skipif(
    get_tracer() is not None,
    reason="tracing profiles every operator, which materializes streaming sends",
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def no_sleep_policy(max_attempts: int = 3, **kwargs) -> RetryPolicy:
    kwargs.setdefault("sleep", lambda seconds: None)
    return RetryPolicy(max_attempts, **kwargs)


def single_node_connector(injector=None, **kwargs) -> PostgresConnector:
    db = SQLDatabase()
    db.create_table("t")
    db.insert("t", [{"a": 1}, {"a": 2}])
    return PostgresConnector(db, fault_injector=injector, **kwargs)


# ----------------------------------------------------------------------
# Deadline / CancellationToken units
# ----------------------------------------------------------------------
class TestDeadline:
    def test_budget_accounting(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == 2.0
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_clamp_never_sleeps_past_expiry(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.clamp(0.4) == 0.4
        clock.advance(0.7)
        assert deadline.clamp(0.4) == pytest.approx(0.3)
        clock.advance(0.5)
        assert deadline.clamp(0.4) == 0.0

    def test_check_raises_with_context(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        deadline.check(backend="pg")  # within budget: no raise
        clock.advance(0.5)
        with pytest.raises(QueryTimeoutError, match="pg.*0.500s deadline.*shard 2"):
            deadline.check(backend="pg", where="shard 2")

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestCancellationToken:
    def test_first_reason_sticks(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel("shard 2 died")
        token.cancel("too late")
        assert token.cancelled
        assert token.reason == "shard 2 died"
        with pytest.raises(QueryCancelledError, match="shard 2 died"):
            token.check(where="merge")

    def test_parent_cancellation_reaches_children(self):
        parent = CancellationToken()
        child = CancellationToken(parent=parent)
        parent.cancel("action aborted")
        assert child.cancelled
        assert child.reason == "action aborted"

    def test_child_cancellation_never_propagates_up(self):
        parent = CancellationToken()
        child = CancellationToken(parent=parent)
        child.cancel("lost hedge race")
        assert not parent.cancelled
        assert parent.reason == ""


class TestBudgetScope:
    def test_install_and_restore(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        token = CancellationToken()
        assert current_deadline() is None and current_token() is None
        with budget_scope(deadline, token):
            assert current_deadline() is deadline
            assert current_token() is token
        assert current_deadline() is None and current_token() is None

    def test_none_fields_inherit_from_outer_frame(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        inner_token = CancellationToken()
        with budget_scope(deadline, CancellationToken()):
            with budget_scope(token=inner_token):
                assert current_deadline() is deadline  # inherited
                assert current_token() is inner_token  # narrowed

    def test_frame_crosses_threads_via_propagation(self):
        from repro.resilience.deadline import current_frame, propagated_frame

        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        seen = {}
        with budget_scope(deadline, CancellationToken()):
            frame = current_frame()

            def worker():
                with propagated_frame(frame):
                    seen["deadline"] = current_deadline()
                    seen["token"] = current_token()

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert seen["deadline"] is deadline
            assert seen["token"] is frame.token


class TestActionScope:
    def test_configured_deadline_creates_root_frame(self, monkeypatch):
        monkeypatch.delenv(ENV_DEADLINE, raising=False)
        connector = single_node_connector(deadline=4.0)
        connector.deadline_clock = FakeClock()
        with action_scope(connector) as frame:
            assert frame.deadline is not None
            assert frame.deadline.seconds == 4.0
            assert frame.token is not None

    def test_nested_action_shares_the_outer_budget(self, monkeypatch):
        monkeypatch.delenv(ENV_DEADLINE, raising=False)
        connector = single_node_connector(deadline=4.0)
        connector.deadline_clock = FakeClock()
        with action_scope(connector) as outer:
            with action_scope(connector) as inner:
                assert inner is outer  # one budget for the whole action tree

    def test_env_deadline_applies_without_config(self, monkeypatch):
        monkeypatch.setenv(ENV_DEADLINE, "7.5")
        connector = single_node_connector()
        with action_scope(connector) as frame:
            assert frame.deadline is not None
            assert frame.deadline.seconds == 7.5

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_DEADLINE, raising=False)
        connector = single_node_connector()
        with action_scope(connector) as frame:
            assert frame.deadline is None  # seed behaviour
            assert frame.token is not None

    def test_resolve_deadline_seconds(self, monkeypatch):
        monkeypatch.setenv(ENV_DEADLINE, "2.5")
        assert resolve_deadline_seconds() == 2.5
        assert resolve_deadline_seconds(1.5) == 1.5  # explicit wins
        assert resolve_deadline_seconds(-1.0) is None  # explicit off wins too
        monkeypatch.setenv(ENV_DEADLINE, "garbage")
        assert resolve_deadline_seconds() is None
        monkeypatch.setenv(ENV_DEADLINE, "-3")
        assert resolve_deadline_seconds() is None
        monkeypatch.delenv(ENV_DEADLINE)
        assert resolve_deadline_seconds() is None


# ----------------------------------------------------------------------
# Retry backoff clamped to the remaining budget
# ----------------------------------------------------------------------
class TestBackoffClamp:
    def test_sleeps_are_clamped_and_final_sleep_skipped(self):
        clock = FakeClock()
        slept = []
        policy = RetryPolicy(
            5, base_delay=3.0, max_delay=10.0, jitter=0.0, sleep=slept.append
        )
        deadline = Deadline(4.0, clock=clock)
        policy.wait(1, deadline=deadline)
        assert slept == [3.0]  # full backoff fits
        clock.advance(3.0)
        policy.wait(2, deadline=deadline)
        assert slept == [3.0, 1.0]  # 6s backoff clamped to the last 1s
        clock.advance(1.0)
        with pytest.raises(QueryTimeoutError):
            policy.wait(3, deadline=deadline)  # no budget: no sleep at all
        assert slept == [3.0, 1.0]

    def test_no_deadline_means_seed_backoff(self):
        slept = []
        policy = RetryPolicy(
            3, base_delay=3.0, max_delay=10.0, jitter=0.0, sleep=slept.append
        )
        policy.wait(1)
        assert slept == [3.0]


# ----------------------------------------------------------------------
# Connector sends under a deadline
# ----------------------------------------------------------------------
class TestConnectorDeadline:
    def test_retry_loop_stops_eagerly_when_budget_runs_out(self):
        # Deterministic timeline on a fake clock: the backend is down and
        # backoff sleeps advance the deadline clock.  attempt 1 fails at
        # t=0 and sleeps 3s; attempt 2 fails at t=3 and its 6s backoff is
        # clamped to the remaining 2s; at t=5 the budget is gone, so
        # attempt 3 is never launched — the loop raises eagerly instead.
        clock = FakeClock()
        injector = FaultInjector()
        injector.down("PostgresConnector")
        policy = RetryPolicy(
            5, base_delay=3.0, max_delay=10.0, jitter=0.0, sleep=clock.advance
        )
        connector = single_node_connector(
            injector, retry_policy=policy, deadline=5.0
        )
        connector.deadline_clock = clock
        before = metrics.counter_value(
            "deadline_exceeded_total", backend="PostgresConnector"
        )
        with pytest.raises(QueryTimeoutError, match="deadline"):
            connector.send(QUERY, "t")
        assert clock.now == 5.0  # the clamp: never slept past expiry
        record = connector.send_log[-1]
        assert record.attempts == 2  # the third attempt never launched
        assert record.outcome == "error"
        after = metrics.counter_value(
            "deadline_exceeded_total", backend="PostgresConnector"
        )
        assert after == before + 1

    def test_expired_ambient_deadline_fails_before_any_attempt(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        clock.advance(3.0)
        connector = single_node_connector()
        with budget_scope(deadline):
            with pytest.raises(QueryTimeoutError):
                connector.send(QUERY, "t")
        record = connector.send_log[-1]
        assert record.attempts == 0
        assert record.outcome == "error"

    def test_cancelled_token_fails_before_any_attempt(self):
        token = CancellationToken()
        token.cancel("user abort")
        connector = single_node_connector()
        with budget_scope(token=token):
            with pytest.raises(QueryCancelledError, match="user abort"):
                connector.send(QUERY, "t")
        record = connector.send_log[-1]
        assert record.attempts == 0
        assert record.outcome == "cancelled"
        assert record.cancelled == 1

    def test_send_within_budget_reports_the_remainder(self):
        clock = FakeClock()
        connector = single_node_connector(deadline=10.0)
        connector.deadline_clock = clock
        result = connector.send(QUERY, "t")
        assert result.scalar() == 2
        record = connector.send_log[-1]
        assert record.outcome == "ok"
        assert record.deadline_budget_ms == pytest.approx(10_000.0)


# ----------------------------------------------------------------------
# Streaming sends honor the budget at batch boundaries
# ----------------------------------------------------------------------
class TestStreamingDeadline:
    STREAM_QUERY = "SELECT * FROM t x"

    @needs_real_streaming
    def test_stream_raises_at_the_next_batch_boundary(self, monkeypatch):
        monkeypatch.delenv(ENV_DEADLINE, raising=False)
        clock = FakeClock()
        # An explicit empty injector blocks the CI chaos env's global
        # injector + default retry policy, which would force this
        # streaming send to materialize (stream + retry).
        connector = single_node_connector(FaultInjector(), deadline=5.0)
        connector.deadline_clock = clock
        result = connector.send(self.STREAM_QUERY, "t", stream=True)
        assert getattr(result, "streaming", False)
        records = result.iter_records()
        assert next(records) is not None  # within budget: flows
        clock.advance(6.0)
        with pytest.raises(QueryTimeoutError, match="stream drain"):
            next(records)

    @needs_real_streaming
    def test_per_attempt_timeout_becomes_the_drain_deadline(self, monkeypatch):
        # The seed silently ignored ``timeout=`` on streaming sends; now
        # the attempt's budget covers the whole drain.
        monkeypatch.delenv(ENV_DEADLINE, raising=False)
        clock = FakeClock()
        connector = single_node_connector(FaultInjector(), timeout=0.5)
        connector.deadline_clock = clock
        result = connector.send(self.STREAM_QUERY, "t", stream=True)
        assert getattr(result, "streaming", False)
        records = result.iter_records()
        next(records)
        clock.advance(1.0)
        with pytest.raises(QueryTimeoutError):
            next(records)

    def test_stream_with_retry_policy_warns_once_and_materializes(self, caplog):
        connector = single_node_connector(retry_policy=no_sleep_policy())
        with caplog.at_level("WARNING"):
            result = connector.send(self.STREAM_QUERY, "t", stream=True)
        assert not getattr(result, "streaming", False)
        warnings = [r for r in caplog.records if "materializes" in r.message]
        assert len(warnings) == 1
        caplog.clear()
        with caplog.at_level("WARNING"):
            connector.send(self.STREAM_QUERY, "t", stream=True)
        assert not [r for r in caplog.records if "materializes" in r.message]

    @needs_real_streaming
    def test_cancelled_token_stops_the_stream(self, monkeypatch):
        monkeypatch.delenv(ENV_DEADLINE, raising=False)
        token = CancellationToken()
        connector = single_node_connector(FaultInjector())
        with budget_scope(token=token):
            result = connector.send(self.STREAM_QUERY, "t", stream=True)
        assert getattr(result, "streaming", False)
        records = result.iter_records()
        next(records)
        token.cancel("consumer gave up")
        with pytest.raises(QueryCancelledError, match="consumer gave up"):
            next(records)


# ----------------------------------------------------------------------
# Hedge suppression: no budget left, no speculative leg
# ----------------------------------------------------------------------
class TestHedgeSuppression:
    NUM_RECORDS = 120

    def make_cluster(self, injector) -> GreenplumCluster:
        cluster = GreenplumCluster(
            4,
            retry_policy=no_sleep_policy(),
            fault_injector=injector,
            replication_factor=2,
            hedge=HedgePolicy(threshold_seconds=0.01),
        )
        cluster.create_table("Bench.data", primary_key=loaders.PRIMARY_KEY)
        cluster.insert(
            "Bench.data", wisconsin_records(self.NUM_RECORDS), shard_key="unique1"
        )
        return cluster

    def slow_injector(self) -> FaultInjector:
        injector = FaultInjector(sleep=no_sleep)
        injector.slow_node(2, 0.5)
        return injector

    def test_control_run_hedges_the_slow_node(self):
        cluster = self.make_cluster(self.slow_injector())
        result = cluster.execute(COUNT_QUERY)
        assert result.scalar() == self.NUM_RECORDS
        assert result.stats.hedges >= 1

    def test_exhausted_budget_suppresses_the_hedge(self):
        cluster = self.make_cluster(self.slow_injector())
        clock = FakeClock()
        # Remaining budget (5ms) is below the 10ms hedge threshold: a
        # hedge could only *start* after the budget ran out, so it never
        # launches — the slow primary serves, and the answer is intact.
        with budget_scope(Deadline(0.005, clock=clock)):
            result = cluster.execute(COUNT_QUERY)
        assert result.scalar() == self.NUM_RECORDS
        assert result.stats.hedges == 0
        assert not result.partial


# ----------------------------------------------------------------------
# Dispatcher-level cooperative cancellation
# ----------------------------------------------------------------------
class TestDispatcherCancellation:
    def drain_threads(self, prefix: str) -> list[threading.Thread]:
        return [
            t
            for t in threading.enumerate()
            if t.name.startswith(prefix) and t.is_alive()
        ]

    def test_losing_race_leg_is_cancelled(self):
        dispatcher = ThreadPoolDispatcher(max_workers=2)
        batches: list[int] = []

        def primary():
            token = current_token()
            assert token is not None  # race installs a per-leg child token
            for i in range(10_000):
                token.check(where="primary batch")
                batches.append(i)
                time.sleep(0.002)
            return "primary"

        try:
            race = dispatcher.race(primary, lambda: "hedge", 0.01)
            assert race.hedged
            assert race.hedge_value == "hedge"
            assert race.primary is None  # cancelled, not an error
            assert not race.primary_first
            done = len(batches)
            assert done < 10_000  # stopped mid-loop, not drained
            time.sleep(0.05)
            assert len(batches) == done  # the counter stopped advancing
            assert not self.drain_threads("repro-hedge-primary")
        finally:
            dispatcher.close()

    def test_fatal_shard_error_cancels_the_siblings(self):
        dispatcher = ThreadPoolDispatcher(max_workers=4)
        batches = {1: 0, 2: 0, 3: 0}
        limit = 5_000

        def run_on_shard(shard: int) -> ResultSet:
            if shard == 0:
                time.sleep(0.05)
                raise ExecutionError("shard 0 hit a poison record")
            token = current_token()
            for _ in range(limit):
                if token is not None and token.cancelled:
                    token.check(where=f"shard {shard} batch")
                batches[shard] += 1
                time.sleep(0.002)
            return ResultSet()

        try:
            # The real error wins over the siblings' cancellations.
            with pytest.raises(ExecutionError, match="poison"):
                scatter_gather(
                    run_on_shard, 4, MergeSpec(kind="concat"),
                    dispatcher=dispatcher,
                )
            progress = dict(batches)
            assert all(count < limit for count in progress.values())
            time.sleep(0.05)
            assert batches == progress  # sibling work genuinely stopped
        finally:
            dispatcher.close()
        assert not self.drain_threads("repro-shard")  # no worker leaks


# ----------------------------------------------------------------------
# Chaos acceptance: budget kept or failed fast, never a hang
# ----------------------------------------------------------------------
class TestChaosAcceptance:
    NUM_RECORDS = 120
    BUDGET = 1.0
    # One in-flight attempt may straddle the expiry (the check fires at
    # the next boundary): the worst overshoot is one slow-node attempt.
    EPSILON = 0.9
    QUERIES = 12

    def build_cluster(self, injector, policy=None) -> GreenplumCluster:
        # cache=False: under the CI cache matrix a repeated query would be
        # served instantly from cache and the deadline would never bite.
        cluster = GreenplumCluster(
            4,
            retry_policy=policy if policy is not None else no_sleep_policy(),
            fault_injector=injector,
            replication_factor=2,
            cache=False,
        )
        cluster.create_table("Bench.data", primary_key=loaders.PRIMARY_KEY)
        cluster.insert(
            "Bench.data", wisconsin_records(self.NUM_RECORDS), shard_key="unique1"
        )
        return cluster

    def test_every_query_meets_budget_or_fails_fast(self):
        healthy = self.build_cluster(FaultInjector(sleep=no_sleep))
        expected = healthy.execute(COUNT_QUERY).scalar()

        clock = FakeClock()
        injector = FaultInjector(seed=7, sleep=clock.advance)
        injector.slow_node(2, 0.6)
        injector.transient_rate(0.15)
        policy = RetryPolicy(3, base_delay=0.3, jitter=0.0, sleep=clock.advance)
        cluster = self.build_cluster(injector, policy)

        successes = failures = 0
        for _ in range(self.QUERIES):
            started = clock.now
            try:
                with budget_scope(Deadline(self.BUDGET, clock=clock)):
                    result = cluster.execute(COUNT_QUERY)
            except (QueryTimeoutError, OverloadError):
                failures += 1
            else:
                # Parity: a query that completes is *correct*, faults or not.
                assert result.scalar() == expected
                assert not result.partial
                successes += 1
            # The budget held (within one straddling attempt), success or not.
            assert clock.now - started <= self.BUDGET + self.EPSILON
        assert successes + failures == self.QUERIES
        assert successes > 0  # the chaos is survivable...
        assert failures > 0  # ...and the deadline genuinely bites


# ----------------------------------------------------------------------
# Parity: knobs ON change nothing about the answers
# ----------------------------------------------------------------------
class TestKnobsOnParity:
    """All 13 Table III expressions, all four backends, deadline+admission on.

    The generous budget (30s wall) and an uncontended controller must be
    invisible: answers byte-identical to the eager baseline, exactly as
    the knobs-off integration suite asserts.
    """

    SCALAR_EXPRESSIONS = (1, 3, 6, 7, 11, 12, 13)
    FRAME_EXPRESSIONS = (2, 4, 5, 8, 9, 10)

    def run(self, expr_id, df, df2):
        expr = next(e for e in EXPRESSIONS if e.id == expr_id)
        return expr.run(df, df2, benchmark_params(), DataFrameAPI())

    def test_expressions_agree_with_deadline_and_admission_on(
        self, all_connectors, wisconsin
    ):
        eager = (frame_from_records(wisconsin), frame_from_records(wisconsin))
        saved = {
            name: (connector.deadline, connector.admission)
            for name, connector in all_connectors.items()
        }
        try:
            for connector in all_connectors.values():
                connector.deadline = 30.0
                connector.admission = AdmissionController(backend=connector.name)
            for backend, connector in all_connectors.items():
                df = PolyFrame("Bench", "data", connector)
                df2 = PolyFrame("Bench", "data2", connector)
                for expr_id in self.SCALAR_EXPRESSIONS:
                    expected = self.run(expr_id, *eager)
                    got = self.run(expr_id, df, df2)
                    assert got == expected, f"expression {expr_id} on {backend}"
                for expr_id in self.FRAME_EXPRESSIONS:
                    expected = self.run(expr_id, *eager)
                    got = self.run(expr_id, df, df2)
                    assert len(got) == len(expected), (
                        f"expression {expr_id} row count on {backend}"
                    )
                # Nothing queued, nothing shed: admission was invisible.
                assert connector.admission.stats()["shed"] == 0
                assert connector.admission.inflight == 0
        finally:
            for name, connector in all_connectors.items():
                connector.deadline, connector.admission = saved[name]
