"""Rewrite-rule configuration and substitution-engine tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rewrite import RewriteEngine, RewriteRules, load_builtin
from repro.core.rewrite.engine import substitute
from repro.core.rewrite.rules import BUILTIN_LANGUAGES
from repro.errors import RewriteError

SAMPLE_CONFIG = """
; comment line
[QUERIES]
q1 = MATCH(t: $collection)
q2 = $subquery
 WITH t{$attribute_alias}

[FUNCTIONS]
min = min(t.$attribute)
"""


class TestConfigParsing:
    def test_sections_and_keys(self):
        rules = RewriteRules.from_text(SAMPLE_CONFIG, "demo")
        assert rules["q1"].section == "QUERIES"
        assert rules["min"].section == "FUNCTIONS"
        assert rules.names() == ["q1", "q2", "min"]

    def test_multiline_continuation(self):
        rules = RewriteRules.from_text(SAMPLE_CONFIG, "demo")
        assert rules["q2"].template == "$subquery\nWITH t{$attribute_alias}"

    def test_comments_ignored(self):
        rules = RewriteRules.from_text("; only a comment\n[S]\nk = v", "demo")
        assert rules["k"].template == "v"

    def test_bad_line_rejected(self):
        with pytest.raises(RewriteError):
            RewriteRules.from_text("[S]\n!!! not a rule", "demo")

    def test_continuation_outside_rule_rejected(self):
        with pytest.raises(RewriteError):
            RewriteRules.from_text("[S]\n  orphan continuation", "demo")

    def test_unknown_rule_raises(self):
        rules = RewriteRules.from_text(SAMPLE_CONFIG, "demo")
        with pytest.raises(RewriteError):
            rules["nope"]
        assert rules.get("nope") is None

    def test_variables_extraction(self):
        rules = RewriteRules.from_text(SAMPLE_CONFIG, "demo")
        assert rules["q2"].variables() == {"subquery", "attribute_alias"}

    def test_section_listing(self):
        rules = RewriteRules.from_text(SAMPLE_CONFIG, "demo")
        assert [rule.name for rule in rules.section("QUERIES")] == ["q1", "q2"]


class TestSubstitution:
    def test_simple(self):
        assert substitute("SELECT $a FROM $b", {"a": "x", "b": "t"}) == "SELECT x FROM t"

    def test_unknown_tokens_pass_through(self):
        out = substitute('{ "$match": { "$eq": ["$$left", $right] } }', {"left": "lang", "right": '"en"'})
        assert out == '{ "$match": { "$eq": ["$lang", "en"] } }'

    def test_longest_name_wins(self):
        out = substitute("$attribute_alias and $attribute", {"attribute": "a", "attribute_alias": "b"})
        assert out == "b and a"

    def test_name_boundary_respected(self):
        # $agg must not swallow the front of an unknown longer token.
        out = substitute("$agg_aliasX $agg", {"agg": "MAX"})
        assert out == "$agg_aliasX MAX"

    def test_mongo_field_path_convention(self):
        out = substitute('"$min": "$$attribute"', {"attribute": "unique1"})
        assert out == '"$min": "$unique1"'

    def test_repeated_variable(self):
        out = substitute("$x + $x", {"x": "1"})
        assert out == "1 + 1"


class TestBuiltinConfigs:
    @pytest.mark.parametrize("language", BUILTIN_LANGUAGES)
    def test_loads(self, language):
        rules = load_builtin(language)
        assert rules.language == language

    @pytest.mark.parametrize("language", BUILTIN_LANGUAGES)
    def test_required_vocabulary_present(self, language):
        rules = load_builtin(language)
        required = [
            "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10",
            "q13", "q14", "q15",
            "single_attribute", "project_attribute", "attribute_separator",
            "statement_alias", "agg_alias_entry",
            "add", "sub", "mul", "div", "mod",
            "and", "or", "not",
            "eq", "ne", "gt", "lt", "ge", "le", "isnull", "notnull",
            "string", "number", "null",
            "limit", "return_all",
            "min", "max", "avg", "std", "count", "sum",
            "upper", "lower",
        ]
        missing = [name for name in required if name not in rules]
        assert not missing, f"{language} missing rules: {missing}"

    def test_unknown_language(self):
        with pytest.raises(RewriteError):
            load_builtin("klingon")

    def test_paper_fig3_min_rule_shapes(self):
        assert load_builtin("sqlpp")["min"].template == "MIN($attribute)"
        assert load_builtin("mongo")["min"].template == '"$min": "$$attribute"'
        assert load_builtin("cypher")["min"].template == "min(t.$attribute)"


class TestRewriteEngine:
    def test_apply(self):
        engine = RewriteEngine("cypher")
        assert engine.apply("q1", collection="Users") == "MATCH(t: Users)"

    def test_join_list(self):
        engine = RewriteEngine("sql")
        assert engine.join_list(["a", "b", "c"]) == "a, b, c"
        with pytest.raises(RewriteError):
            engine.join_list([])

    def test_literals_sql(self):
        engine = RewriteEngine("sql")
        assert engine.literal("en") == "'en'"
        assert engine.literal("it's") == "'it''s'"
        assert engine.literal(5) == "5"
        assert engine.literal(None) == "NULL"
        assert engine.literal(True) == "TRUE"

    def test_literals_mongo(self):
        engine = RewriteEngine("mongo")
        assert engine.literal("en") == '"en"'
        assert engine.literal(None) == "null"
        assert engine.literal(False) == "false"
        assert engine.literal('say "hi"') == '"say \\"hi\\""'

    def test_unsupported_literal(self):
        with pytest.raises(RewriteError):
            RewriteEngine("sql").literal(object())

    def test_user_defined_override(self):
        engine = RewriteEngine("cypher", overrides={"q1": "MATCH(t: $collection:Extra)"})
        assert engine.apply("q1", collection="X") == "MATCH(t: X:Extra)"

    def test_user_defined_new_rule(self):
        engine = RewriteEngine("sql", overrides={"custom": "EXPLAIN $subquery"})
        assert engine.apply("custom", subquery="SELECT 1") == "EXPLAIN SELECT 1"
        assert engine.rules["custom"].section == "USER"

    def test_paper_incremental_chain_sqlpp(self):
        """Reproduce the Table I op-1..6 chain through the rule engine."""
        engine = RewriteEngine("sqlpp")
        q1 = engine.apply("q1", namespace="Test", collection="Users")
        assert q1 == "SELECT VALUE t FROM Test.Users t"
        statement = engine.apply("eq", left="t.lang", right="'en'")
        q4 = engine.apply("q6", subquery=q1, statement=statement)
        assert q4 == "SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t WHERE t.lang = 'en'"
        entries = engine.join_list(["t.name", "t.address"])
        q5 = engine.apply("q2", subquery=q4, attribute_list=entries)
        q6 = engine.apply("limit", subquery=q5, num=10)
        assert q6.endswith("LIMIT 10")
        assert "SELECT t.name, t.address" in q6


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
        st.from_regex(r"[A-Za-z0-9_.]{1,12}", fullmatch=True),
        min_size=1,
        max_size=4,
    )
)
def test_property_substitution_replaces_exactly_known_vars(variables):
    template = " ".join(f"${name}" for name in variables)
    out = substitute(template, variables)
    assert out == " ".join(str(value) for value in variables.values())
