"""Golden parity and fusion equivalence for the logical-plan compiler.

Two guarantees pin the IR refactor:

1. **Byte parity at level 0** — for every Table III benchmark expression,
   on every backend, the queries a plan-compiled PolyFrame sends are
   byte-identical to what the pre-IR eager rewriter sent (recorded in
   ``tests/golden/queries_<backend>.json``; regenerate with
   ``tests/golden/generate_goldens.py`` only if the rules themselves
   change).
2. **Fusion is sound and useful** — at optimization level 2, every
   expression returns the same results as level 0, and on the backends
   with fused templates a healthy majority of expressions compile to
   strictly lower nesting depth.  Cypher has no fused templates (clauses
   already chain flat) and must fall back gracefully.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.eager import EagerFrame

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

BACKENDS = ["asterixdb", "postgres", "mongodb", "neo4j"]

#: Backends whose configs define [FUSED QUERIES] templates.
FUSED_BACKENDS = ["asterixdb", "postgres", "mongodb"]

#: The acceptance floor: with fusion on, at least this many of the 13
#: expressions must compile to strictly lower nesting depth.
MIN_FUSED_IMPROVEMENTS = 4


def _load_golden(backend: str) -> dict[str, list[str]]:
    path = os.path.join(GOLDEN_DIR, f"queries_{backend}.json")
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _make_connector(backend: str, engines, level: int):
    factories = {
        "asterixdb": AsterixDBConnector,
        "postgres": PostgresConnector,
        "mongodb": MongoDBConnector,
        "neo4j": Neo4jConnector,
    }
    return factories[backend](engines[backend], optimization_level=level)


def _run_expressions(connector):
    """Run all 13 expressions; returns (results, sent queries, max depths)."""
    params = benchmark_params()
    api = DataFrameAPI()
    results: dict[int, object] = {}
    sent: dict[int, list[str]] = {}
    depths: dict[int, int] = {}
    original_send = connector.send
    for expr in EXPRESSIONS:
        queries: list[str] = []

        def recording_send(query, collection, _queries=queries, **kwargs):
            _queries.append(query)
            return original_send(query, collection, **kwargs)

        connector.send = recording_send
        try:
            df = PolyFrame("Bench", "data", connector)
            df2 = PolyFrame("Bench", "data2", connector)
            results[expr.id] = expr.run(df, df2, params, api)
        finally:
            connector.send = original_send
        sent[expr.id] = queries
        depths[expr.id] = max(connector.nesting_depth(query) for query in queries)
    return results, sent, depths


def _normalize(result):
    if isinstance(result, EagerFrame):
        return sorted(
            (tuple(sorted(record.items())) for record in result.to_records()),
        )
    return result


@pytest.fixture(scope="module")
def engines(asterixdb, postgres, mongodb, neo4j):
    return {
        "asterixdb": asterixdb,
        "postgres": postgres,
        "mongodb": mongodb,
        "neo4j": neo4j,
    }


@pytest.mark.parametrize("backend", BACKENDS)
def test_level0_matches_golden_queries(backend, engines):
    """Plan compilation at level 0 reproduces the eager rewriter's text."""
    golden = _load_golden(backend)
    connector = _make_connector(backend, engines, level=0)
    _, sent, _ = _run_expressions(connector)
    for expr in EXPRESSIONS:
        assert sent[expr.id] == golden[str(expr.id)], (
            f"{backend} expression {expr.id} ({expr.name}) diverged from the "
            "pre-IR query text at optimization level 0"
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_results_match_unfused(backend, engines):
    """Level 2 returns exactly what level 0 returns, expression by expression."""
    base_results, _, base_depths = _run_expressions(
        _make_connector(backend, engines, level=0)
    )
    fused_results, _, fused_depths = _run_expressions(
        _make_connector(backend, engines, level=2)
    )
    for expr in EXPRESSIONS:
        assert _normalize(fused_results[expr.id]) == _normalize(
            base_results[expr.id]
        ), f"{backend} expression {expr.id} ({expr.name}) changed results under fusion"
        assert fused_depths[expr.id] <= base_depths[expr.id], (
            f"{backend} expression {expr.id} ({expr.name}) got *deeper* under fusion"
        )


@pytest.mark.parametrize("backend", FUSED_BACKENDS)
def test_fusion_reduces_nesting_depth(backend, engines):
    """On fused backends, ≥4 expressions compile strictly shallower."""
    _, _, base_depths = _run_expressions(_make_connector(backend, engines, level=0))
    _, _, fused_depths = _run_expressions(_make_connector(backend, engines, level=2))
    improved = [
        expr.id for expr in EXPRESSIONS if fused_depths[expr.id] < base_depths[expr.id]
    ]
    assert len(improved) >= MIN_FUSED_IMPROVEMENTS, (
        f"{backend}: only expressions {improved} got shallower "
        f"(needed {MIN_FUSED_IMPROVEMENTS}); "
        f"level 0 depths {base_depths}, level 2 depths {fused_depths}"
    )


def test_cypher_falls_back_without_fused_templates(engines):
    """Cypher opts out of scan fusion and must fall back gracefully.

    Structural (level 1) rewrites are backend-agnostic and still apply —
    e.g. the aggregate-over-projection elision shortens expressions 6/7 —
    but scan fusion contributes nothing on a language without
    ``<rule>_scan`` templates: level 2 compiles exactly what level 1 does.
    """
    _, base_sent, base_depths = _run_expressions(
        _make_connector("neo4j", engines, level=0)
    )
    _, structural_sent, _ = _run_expressions(
        _make_connector("neo4j", engines, level=1)
    )
    _, fused_sent, fused_depths = _run_expressions(
        _make_connector("neo4j", engines, level=2)
    )
    assert fused_sent == structural_sent
    assert all(fused_depths[i] <= base_depths[i] for i in fused_depths)
