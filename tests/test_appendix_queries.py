"""Fidelity tests: generated benchmark queries vs the paper's Appendix E-H.

For key expressions, PolyFrame's generated query text must carry the same
structure as the paper's published translations (modulo whitespace and the
deterministic aliases this implementation adds).
"""

from __future__ import annotations

import json

import pytest

from repro import PolyFrame
from repro.bench.expressions import benchmark_params

PARAMS = benchmark_params()


@pytest.fixture(scope="module")
def frames(all_connectors):
    return {
        name: (
            PolyFrame("Bench", "data", connector),
            PolyFrame("Bench", "data2", connector),
        )
        for name, connector in all_connectors.items()
    }


def normalize(text: str) -> str:
    return " ".join(text.split())


class TestAppendixESqlpp:
    """Appendix E: translated SQL++ queries."""

    def test_e1_count(self, frames):
        af, _ = frames["asterixdb"]
        query = af.connector.rewriter.apply("q3", subquery=af.query)
        assert normalize(query) == (
            "SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM Bench.data t) t"
        )

    def test_e6_max(self, frames):
        af, _ = frames["asterixdb"]
        series = af["unique1"]
        agg = af.connector.rewriter.apply("q7",
            subquery=series.query,
            agg_func=af.connector.rewriter.apply("max", attribute="unique1"),
            agg_alias="max_unique1",
        )
        # Appendix E6: MAX over a single-column projection subquery.
        assert normalize(agg) == normalize(
            "SELECT MAX(unique1) FROM (SELECT t.unique1 FROM "
            "(SELECT VALUE t FROM Bench.data t) t) t"
        )

    def test_e9_sort(self, frames):
        af, _ = frames["asterixdb"]
        query = af.sort_values("unique1", ascending=False).query
        assert normalize(query) == normalize(
            "SELECT VALUE t FROM Bench.data t ORDER BY unique1 DESC"
        )

    def test_e13_missing(self, frames):
        af, _ = frames["asterixdb"]
        filtered = af[af["tenPercent"].isna()]
        assert "tenPercent IS UNKNOWN" in filtered.query

    def test_e12_join(self, frames):
        af, af2 = frames["asterixdb"]
        joined = af.merge(af2, left_on="unique1", right_on="unique1")
        assert "JOIN" in joined.query
        assert "l.unique1 = r.unique1" in joined.query


class TestAppendixFSql:
    """Appendix F: translated SQL queries (quoted identifiers)."""

    def test_f3_filter_count(self, frames):
        af, _ = frames["postgres"]
        filtered = af[
            (af["ten"] == PARAMS.ten)
            & (af["twentyPercent"] == PARAMS.twenty_percent)
            & (af["two"] == PARAMS.two)
        ]
        query = af.connector.rewriter.apply("q3", subquery=filtered.query)
        text = normalize(query)
        assert text.startswith("SELECT COUNT(*) FROM (SELECT * FROM")
        assert f't."ten" = {PARAMS.ten}' in text
        assert f't."twentyPercent" = {PARAMS.twenty_percent}' in text

    def test_f13_is_null(self, frames):
        af, _ = frames["postgres"]
        filtered = af[af["tenPercent"].isna()]
        assert 't."tenPercent" IS NULL' in filtered.query

    def test_f9_order_by(self, frames):
        af, _ = frames["postgres"]
        query = af.sort_values("unique1", ascending=False).query
        assert normalize(query).endswith('ORDER BY "unique1" DESC')


class TestAppendixHMongo:
    """Appendix H: translated MongoDB pipelines."""

    def pipeline_for(self, frames, build):
        af, af2 = frames["mongodb"]
        query = build(af, af2)
        return af.connector.preprocess(query, "data")

    def test_h1_count(self, frames):
        pipeline = self.pipeline_for(
            frames,
            lambda af, af2: af.connector.rewriter.apply("q3", subquery=af.query),
        )
        assert pipeline == [{"$match": {}}, {"$count": "count"}]

    def test_h6_max(self, frames):
        af, _ = frames["mongodb"]
        series = af["unique1"]
        rw = af.connector.rewriter
        agg = rw.apply(
            "q7",
            subquery=series.query,
            agg_func=rw.apply("max", attribute="unique1"),
            agg_alias="max",
        )
        pipeline = af.connector.preprocess(agg, "data")
        # Appendix H6: match, project, group {_id:{}, max:{$max}}, project.
        assert pipeline[0] == {"$match": {}}
        assert pipeline[1] == {"$project": {"unique1": 1}}
        assert pipeline[2] == {"$group": {"_id": {}, "max": {"$max": "$unique1"}}}
        assert {"$project": {"_id": 0}} in pipeline

    def test_h9_sort(self, frames):
        af, _ = frames["mongodb"]
        query = af.connector.rewriter.apply(
            "limit", subquery=af.sort_values("unique1", ascending=False).query, num=5
        )
        pipeline = af.connector.preprocess(query, "data")
        assert {"$sort": {"unique1": -1}} in pipeline
        assert pipeline[-1] == {"$limit": 5}
        assert pipeline[-2] == {"$project": {"_id": 0}}

    def test_h13_missing_lt_null(self, frames):
        af, _ = frames["mongodb"]
        filtered = af[af["tenPercent"].isna()]
        query = af.connector.rewriter.apply("q3", subquery=filtered.query)
        pipeline = af.connector.preprocess(query, "data")
        assert {"$match": {"$expr": {"$lt": ["$tenPercent", None]}}} in pipeline

    def test_h12_lookup_unwind(self, frames):
        af, af2 = frames["mongodb"]
        joined = af.merge(af2, left_on="unique1", right_on="unique1")
        query = af.connector.rewriter.apply("q3", subquery=joined.query)
        pipeline = af.connector.preprocess(query, "data")
        lookup = next(stage for stage in pipeline if "$lookup" in stage)["$lookup"]
        assert lookup["from"] == "data2"
        assert lookup["let"] == {"pf_left": "$unique1"}
        assert any("$unwind" in stage for stage in pipeline)
        assert pipeline[-1] == {"$count": "count"}


class TestAppendixGCypher:
    """Appendix G: translated Cypher queries."""

    def test_g1_count(self, frames):
        af, _ = frames["neo4j"]
        query = af.connector.rewriter.apply("q3", subquery=af.query)
        assert normalize(query) == "MATCH(t: data) RETURN COUNT(*) AS t"

    def test_g3_filter_count(self, frames):
        af, _ = frames["neo4j"]
        filtered = af[(af["ten"] == PARAMS.ten) & (af["two"] == PARAMS.two)]
        query = af.connector.rewriter.apply("q3", subquery=filtered.query)
        text = normalize(query)
        assert text.startswith("MATCH(t: data) WITH t WHERE")
        assert f"t.ten = {PARAMS.ten} AND t.two = {PARAMS.two}" in text
        assert text.endswith("RETURN COUNT(*) AS t")

    def test_g9_sort_limit(self, frames):
        af, _ = frames["neo4j"]
        query = af.connector.rewriter.apply(
            "limit", subquery=af.sort_values("unique1", ascending=False).query, num=5
        )
        assert normalize(query) == normalize(
            "MATCH(t: data)\nWITH t ORDER BY t.unique1 DESC\nRETURN t\nLIMIT 5"
        )

    def test_g12_join(self, frames):
        af, af2 = frames["neo4j"]
        joined = af.merge(af2, left_on="unique1", right_on="unique1")
        text = normalize(joined.query)
        assert "MATCH (t), (r: data2)" in text
        assert "WHERE t.unique1 = r.unique1" in text
        assert "WITH t{.*, r}" in text

    def test_g13_is_null(self, frames):
        af, _ = frames["neo4j"]
        filtered = af[af["tenPercent"].isna()]
        assert "t.tenPercent IS NULL" in filtered.query
