"""Integration: the 13 benchmark expressions agree across every system.

This is the reproduction's core correctness gate: each Table III expression,
written once against the pandas surface, must produce the same answer on
the eager baseline and on PolyFrame over all four backends.
"""

from __future__ import annotations

import pytest

from repro import PolyFrame
from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.eager import frame_from_records

API = DataFrameAPI()
PARAMS = benchmark_params()

SCALAR_EXPRESSIONS = (1, 3, 6, 7, 11, 12, 13)
FRAME_EXPRESSIONS = (2, 4, 5, 8, 9, 10)


@pytest.fixture(scope="module")
def eager_frames(wisconsin):
    return frame_from_records(wisconsin), frame_from_records(wisconsin)


@pytest.fixture(scope="module")
def poly_frames(all_connectors):
    return {
        name: (
            PolyFrame("Bench", "data", connector),
            PolyFrame("Bench", "data2", connector),
        )
        for name, connector in all_connectors.items()
    }


def run(expr_id, df, df2):
    expr = next(e for e in EXPRESSIONS if e.id == expr_id)
    return expr.run(df, df2, PARAMS, API)


@pytest.mark.parametrize("expr_id", SCALAR_EXPRESSIONS)
def test_scalar_expressions_agree(expr_id, eager_frames, poly_frames):
    expected = run(expr_id, *eager_frames)
    for backend, (df, df2) in poly_frames.items():
        got = run(expr_id, df, df2)
        assert got == expected, f"expression {expr_id} differs on {backend}"


@pytest.mark.parametrize("expr_id", FRAME_EXPRESSIONS)
def test_frame_expressions_have_consistent_shape(expr_id, eager_frames, poly_frames):
    expected = run(expr_id, *eager_frames)
    for backend, (df, df2) in poly_frames.items():
        got = run(expr_id, df, df2)
        assert len(got) == len(expected), f"expression {expr_id} row count on {backend}"


def test_expression2_projects_exact_columns(poly_frames):
    for backend, (df, df2) in poly_frames.items():
        result = run(2, df, df2)
        assert set(result.columns) == {"two", "four"}, backend


def test_expression5_uppercases(poly_frames, eager_frames):
    # Eager map().head() returns a series; PolyFrame returns a frame.
    expected = sorted(run(5, *eager_frames).tolist())
    for backend, (df, df2) in poly_frames.items():
        result = run(5, df, df2)
        values = result.column_values(result.columns[0])
        assert all(value == value.upper() for value in values), backend
        assert sorted(values) == expected, backend


def test_expression9_sorted_descending(poly_frames, wisconsin):
    top = sorted((r["unique1"] for r in wisconsin), reverse=True)[:5]
    for backend, (df, df2) in poly_frames.items():
        result = run(9, df, df2)
        assert result.column_values("unique1") == top, backend


def test_expression10_selects_matching_rows(poly_frames):
    for backend, (df, df2) in poly_frames.items():
        result = run(10, df, df2)
        assert all(r["ten"] == PARAMS.ten for r in result.to_records()), backend


def test_expression4_group_count_values(poly_frames, eager_frames, wisconsin):
    counts = {}
    for record in wisconsin:
        counts[record["oddOnePercent"]] = counts.get(record["oddOnePercent"], 0) + 1
    for backend, (df, df2) in poly_frames.items():
        result = run(4, df, df2)
        records = result.to_records()
        count_col = next(c for c in result.columns if c.startswith("count"))
        got = {r["oddOnePercent"]: r[count_col] for r in records}
        assert got == counts, backend


def test_expression8_group_max_values(poly_frames, wisconsin):
    maxes: dict = {}
    for record in wisconsin:
        key = record["twenty"]
        maxes[key] = max(maxes.get(key, -1), record["four"])
    for backend, (df, df2) in poly_frames.items():
        result = run(8, df, df2)
        max_col = next(c for c in result.columns if c.startswith("max"))
        got = {r["twenty"]: r[max_col] for r in result.to_records()}
        assert got == maxes, backend


def test_plan_shape_claims(all_connectors, poly_frames):
    """The paper's per-system plan observations, asserted via stats."""
    # These stats assert the engine *executed* the query; a result-cache
    # hit (REPRO_CACHE=1 runs) legitimately skips the scan, so detach
    # the cache from the shared connectors for plan-shape checking.
    for connector in all_connectors.values():
        connector.result_cache = None
    # AsterixDB: expression 1 via PK index (no heap fetches).
    adb_connector = all_connectors["asterixdb"]
    frame = poly_frames["asterixdb"][0]
    rewriter = adb_connector.rewriter
    result = adb_connector.send(rewriter.apply("q3", subquery=frame.query), "data")
    assert result.stats.heap_fetches == 0

    # PostgreSQL: expression 13 (IS NULL count) is index-only.
    pg_connector = all_connectors["postgres"]
    pg_frame = poly_frames["postgres"][0]
    mask = pg_frame["tenPercent"].isna()
    filtered = pg_frame[mask]
    query = pg_connector.rewriter.apply("q3", subquery=filtered.query)
    result = pg_connector.send(query, "data")
    assert result.stats.heap_fetches == 0

    # Neo4j: expression 1 is a count-store lookup (no scan at all).
    neo_connector = all_connectors["neo4j"]
    neo_frame = poly_frames["neo4j"][0]
    query = neo_connector.rewriter.apply("q3", subquery=neo_frame.query)
    result = neo_connector.send(query, "data")
    assert result.stats.full_scans == 0 and result.stats.heap_fetches == 0

    # MongoDB: expression 1 must scan (no metadata count in pipelines).
    mongo_connector = all_connectors["mongodb"]
    mongo_frame = poly_frames["mongodb"][0]
    query = mongo_connector.rewriter.apply("q3", subquery=mongo_frame.query)
    result = mongo_connector.send(query, "data")
    assert result.stats.full_scans == 1
