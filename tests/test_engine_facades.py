"""Facade-level API tests across the engines and clusters."""

from __future__ import annotations

import pytest

from repro.cluster import AsterixDBCluster, GreenplumCluster, MongoDBCluster
from repro.docstore import MongoDatabase
from repro.errors import CatalogError
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB


class TestSQLFacade:
    def test_row_count_and_drop(self):
        db = SQLDatabase()
        db.create_table("t")
        db.insert("t", [{"a": 1}, {"a": 2}])
        assert db.row_count("t") == 2
        db.drop_table("t")
        with pytest.raises(CatalogError):
            db.row_count("t")

    def test_named_index_creation(self):
        db = SQLDatabase()
        db.create_table("t")
        db.create_index("t", "a", index_name="custom_name")
        assert db.catalog.table("t").indexes["custom_name"].column == "a"

    def test_analyze_populates_stats(self):
        db = SQLDatabase()
        db.create_table("t")
        db.insert("t", [{"a": n} for n in range(10)])
        db.analyze("t")
        stats = db.catalog.table("t").stats
        assert stats.row_count == 10
        assert stats.columns["a"].max_value == 9


class TestMongoFacade:
    def test_collection_lifecycle(self):
        db = MongoDatabase()
        db.create_collection("c")
        assert db.has_collection("c")
        assert db.list_collection_names() == ["c"]
        with pytest.raises(CatalogError):
            db.create_collection("c")
        db.drop_collection("c")
        assert not db.has_collection("c")
        with pytest.raises(CatalogError):
            db.drop_collection("c")

    def test_replace_collection(self):
        db = MongoDatabase()
        db.create_collection("c")
        db.collection("c").insert_many([{"a": 1}])
        db.replace_collection("c", [{"b": 2}, {"b": 3}])
        assert db.estimated_document_count("c") == 2


class TestNeo4jFacade:
    def test_node_count_and_index_lifecycle(self):
        db = Neo4jDatabase()
        db.load("L", [{"a": n} for n in range(5)])
        assert db.node_count("L") == 5
        assert db.node_count("M") == 0
        db.create_index("L", "a")
        db.drop_index("L", "a")
        with pytest.raises(CatalogError):
            db.drop_index("L", "a")


class TestClusterFacades:
    def test_asterix_cluster_metadata(self):
        cluster = AsterixDBCluster(2, query_prep_overhead=0.0)
        cluster.create_dataverse("D")
        assert cluster.has_dataverse("D")
        cluster.create_dataset("D", "s", primary_key="id")
        cluster.load("D.s", [{"id": n} for n in range(10)])
        assert cluster.row_count("D.s") == 10
        assert cluster.catalog.has_table("D.s")
        cluster.analyze("D.s")

    def test_greenplum_explain(self):
        cluster = GreenplumCluster(2, query_prep_overhead=0.0)
        cluster.create_table("t")
        cluster.insert("t", [{"a": 1}])
        assert "physical" in cluster.explain("SELECT COUNT(*) FROM t x")

    def test_mongo_cluster_metadata_count(self):
        cluster = MongoDBCluster(3, query_prep_overhead=0.0)
        cluster.create_collection("c")
        cluster.insert_many("c", [{"n": n} for n in range(9)])
        assert cluster.estimated_document_count("c") == 9

    def test_single_node_mongo_cluster_allows_lookup(self):
        cluster = MongoDBCluster(1, query_prep_overhead=0.0)
        cluster.create_collection("c")
        cluster.insert_many("c", [{"n": n} for n in range(4)])
        result = cluster.aggregate("c", [
            {"$lookup": {"from": "c", "localField": "n", "foreignField": "n", "as": "m"}},
            {"$unwind": {"path": "$m"}},
            {"$count": "k"},
        ])
        assert result.records == [{"k": 4}]
