"""Resilient dispatch tests: faults, retries, timeouts, breakers, partial scatter-gather.

Every scenario is deterministic: fault injectors and retry policies own
seeded RNGs, breakers take a fake clock, and retry sleeps are no-ops.
"""

from __future__ import annotations

import pytest

from repro import PolyFrame, PostgresConnector
from repro.bench.expressions import benchmark_params, expression
from repro.bench.runner import run_expression
from repro.bench.systems import SystemUnderTest
from repro.cluster import GreenplumCluster
from repro.cluster.base import scatter_gather, shard_records, stable_hash
from repro.cluster.merge import MergeSpec
from repro.errors import (
    CircuitOpenError,
    ConnectorError,
    ExecutionError,
    QueryTimeoutError,
    ReproError,
    ShardFailureError,
    TransientBackendError,
)
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultInjector,
    FaultRule,
    QueryTimeout,
    RetryPolicy,
)
from repro.resilience.faults import _reset_global_resilience
from repro.sqlengine import SQLDatabase
from repro.sqlengine.result import ResultSet
from repro.wisconsin import loaders, wisconsin_records

NUM_RECORDS = 120
NUM_NODES = 4


def no_sleep_policy(max_attempts: int = 3, **kwargs) -> RetryPolicy:
    kwargs.setdefault("sleep", lambda seconds: None)
    return RetryPolicy(max_attempts, **kwargs)


def make_cluster(injector=None, policy=None, *, allow_partial=False) -> GreenplumCluster:
    # Pin replication_factor=1 and give the cluster its own (possibly
    # empty) injector: the exact attempt/retry counts asserted below
    # assume the seed's single-copy layout, and must hold even when the
    # CI chaos matrix sets REPRO_REPLICATION / REPRO_NODE_DOWN /
    # REPRO_FAULT_RATE process-wide.
    cluster = GreenplumCluster(
        NUM_NODES,
        retry_policy=policy,
        fault_injector=injector if injector is not None else FaultInjector(),
        allow_partial=allow_partial,
        replication_factor=1,
    )
    records = wisconsin_records(NUM_RECORDS)
    for dataset in ("Bench.data", "Bench.data2"):
        cluster.create_table(dataset, primary_key=loaders.PRIMARY_KEY)
        cluster.insert(dataset, records, shard_key="unique1")
    return cluster


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# RetryPolicy / QueryTimeout units
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_classification(self):
        policy = no_sleep_policy(3)
        assert policy.is_retryable(TransientBackendError("x"))
        assert policy.is_retryable(QueryTimeoutError("x"))
        assert not policy.is_retryable(ExecutionError("x"))
        assert not policy.is_retryable(CircuitOpenError("x"))

    def test_budget_exhaustion(self):
        policy = no_sleep_policy(3)
        err = TransientBackendError("x")
        assert policy.should_retry(err, 1)
        assert policy.should_retry(err, 2)
        assert not policy.should_retry(err, 3)

    def test_backoff_grows_and_caps(self):
        policy = no_sleep_policy(6, base_delay=0.01, max_delay=0.04, jitter=0.0)
        delays = [policy.backoff_delay(attempt) for attempt in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.04, 0.04]

    def test_jitter_is_seeded(self):
        a = no_sleep_policy(3, jitter=0.5, seed=11)
        b = no_sleep_policy(3, jitter=0.5, seed=11)
        assert [a.backoff_delay(1) for _ in range(5)] == [b.backoff_delay(1) for _ in range(5)]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(0)
        with pytest.raises(ValueError):
            RetryPolicy(2, jitter=1.5)
        with pytest.raises(ValueError):
            QueryTimeout(0)

    def test_timeout_check(self):
        deadline = QueryTimeout(0.01)
        deadline.check(0.005)  # within budget: no raise
        with pytest.raises(QueryTimeoutError):
            deadline.check(0.02, backend="pg", query="SELECT 1")


# ----------------------------------------------------------------------
# CircuitBreaker unit
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, clock):
        return CircuitBreaker(
            window=4,
            failure_rate_threshold=0.5,
            min_calls=2,
            cooldown_seconds=1.0,
            clock=clock,
            name="pg",
        )

    def test_opens_at_failure_rate(self):
        breaker = self.make(FakeClock())
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == CLOSED  # below min_calls
        breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_successes_keep_rate_low(self):
        breaker = self.make(FakeClock())
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()  # 1 failure in a window of 4: 25% < 50%
        assert breaker.state == CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(1.5)
        breaker.allow()  # cool-down elapsed: probe allowed
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_probe_reopens_on_failure(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.times_opened == 2
        with pytest.raises(CircuitOpenError):
            breaker.allow()


# ----------------------------------------------------------------------
# FaultInjector unit
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_fail_first_per_key(self):
        injector = FaultInjector(seed=5)
        injector.fail_first(2)
        for key in ("a", "b"):
            for _ in range(2):
                with pytest.raises(TransientBackendError):
                    injector.before_request(key)
            injector.before_request(key)  # third request succeeds
        assert injector.injected_faults() == 4
        assert injector.requests("a") == 3

    def test_rate_sequence_is_seeded(self):
        def fault_pattern(seed):
            injector = FaultInjector(seed=seed)
            injector.transient_rate(0.5)
            pattern = []
            for _ in range(20):
                try:
                    injector.before_request("k")
                    pattern.append(False)
                except TransientBackendError:
                    pattern.append(True)
            return pattern

        assert fault_pattern(9) == fault_pattern(9)
        assert any(fault_pattern(9))
        assert not all(fault_pattern(9))

    def test_down_matches_by_substring(self):
        injector = FaultInjector()
        injector.down("#shard2")
        injector.before_request("greenplum[4]#shard0")
        with pytest.raises(TransientBackendError):
            injector.before_request("greenplum[4]#shard2")

    def test_latency_uses_injected_sleep(self):
        naps = []
        injector = FaultInjector(sleep=naps.append)
        rule = injector.latency(0.25, max_faults=1)
        injector.before_request("k")
        injector.before_request("k")  # max_faults=1: only one nap
        assert naps == [0.25]
        assert rule.exhausted

    def test_restore_and_reset(self):
        injector = FaultInjector()
        rule = injector.down("k")
        with pytest.raises(TransientBackendError):
            injector.before_request("k")
        injector.restore(rule)
        injector.before_request("k")
        injector.reset()
        assert injector.requests("k") == 0

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(kind="explode")
        with pytest.raises(ValueError):
            FaultRule(rate=2.0)


# ----------------------------------------------------------------------
# Connector-level send(): retries, timeout, breaker, bookkeeping
# ----------------------------------------------------------------------
def single_node_connector(injector=None, **kwargs) -> PostgresConnector:
    db = SQLDatabase()
    db.create_table("t")
    db.insert("t", [{"a": 1}, {"a": 2}])
    return PostgresConnector(db, fault_injector=injector, **kwargs)


class TestConnectorResilience:
    def test_transient_failures_are_retried(self):
        injector = FaultInjector()
        injector.fail_first(2, backend="PostgresConnector")
        connector = single_node_connector(injector, retry_policy=no_sleep_policy(3))
        result = connector.send("SELECT COUNT(*) FROM t x", "t")
        assert result.scalar() == 2
        record = connector.send_log[-1]
        assert record.attempts == 3
        assert record.outcome == "ok"
        assert record.retries == 2

    def test_budget_exhaustion_raises_and_logs(self):
        injector = FaultInjector()
        injector.down("PostgresConnector")
        connector = single_node_connector(injector, retry_policy=no_sleep_policy(3))
        with pytest.raises(TransientBackendError):
            connector.send("SELECT COUNT(*) FROM t x", "t")
        record = connector.send_log[-1]
        assert record.attempts == 3
        assert record.outcome == "error"

    def test_no_policy_means_no_retry(self):
        injector = FaultInjector()
        injector.fail_first(1)
        connector = single_node_connector(injector)
        with pytest.raises(TransientBackendError):
            connector.send("SELECT COUNT(*) FROM t x", "t")
        assert connector.send_log[-1].attempts == 1

    def test_injected_latency_trips_timeout_then_recovers(self):
        naps = []

        def fake_sleep(seconds):
            naps.append(seconds)

        injector = FaultInjector(sleep=fake_sleep)
        # Simulated latency: the rule books a nap but the fake sleep makes
        # it instant, so force the deadline check with a real stall below.
        connector = single_node_connector(injector, timeout=QueryTimeout(0.005))
        injector.latency(0.25, max_faults=1)
        # Replace the fake with a real (but short) stall for one attempt.
        injector.sleep = lambda seconds: __import__("time").sleep(0.02)
        with pytest.raises(QueryTimeoutError):
            connector.send("SELECT COUNT(*) FROM t x", "t")
        assert connector.send_log[-1].outcome == "error"
        # The latency rule is exhausted, so the next send is fast and fine.
        result = connector.send("SELECT COUNT(*) FROM t x", "t")
        assert result.scalar() == 2

    def test_timeout_accepts_bare_seconds(self):
        connector = single_node_connector(timeout=5.0)
        assert isinstance(connector.timeout, QueryTimeout)
        assert connector.timeout.seconds == 5.0

    def test_breaker_fails_fast_and_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            window=4, failure_rate_threshold=0.5, min_calls=2,
            cooldown_seconds=1.0, clock=clock, name="pg",
        )
        injector = FaultInjector()
        outage = injector.down("PostgresConnector")
        connector = single_node_connector(injector, circuit_breaker=breaker)
        for _ in range(2):
            with pytest.raises(TransientBackendError):
                connector.send("SELECT COUNT(*) FROM t x", "t")
        assert breaker.state == OPEN
        requests_before = injector.requests("PostgresConnector")
        with pytest.raises(CircuitOpenError):
            connector.send("SELECT COUNT(*) FROM t x", "t")
        # The breaker rejected without touching the backend.
        assert injector.requests("PostgresConnector") == requests_before
        assert connector.send_log[-1].outcome == "rejected"
        # Backend comes back; after the cool-down the probe closes the circuit.
        injector.restore(outage)
        clock.advance(1.5)
        result = connector.send("SELECT COUNT(*) FROM t x", "t")
        assert result.scalar() == 2
        assert breaker.state == CLOSED


# ----------------------------------------------------------------------
# Scatter-gather: retries, shard failure, partial results
# ----------------------------------------------------------------------
class TestScatterGatherResilience:
    def test_zero_shards_is_a_clear_error(self):
        with pytest.raises(ReproError, match="at least one shard"):
            scatter_gather(lambda shard: ResultSet(), 0, MergeSpec(kind="concat"))

    def test_first_attempt_failures_recover_via_retries(self):
        injector = FaultInjector()
        injector.fail_first(1)  # every shard's first attempt fails
        cluster = make_cluster(injector, no_sleep_policy(3))
        result = cluster.execute("SELECT COUNT(*) FROM (SELECT * FROM Bench.data) x")
        assert result.scalar() == NUM_RECORDS
        assert result.shard_attempts == (2, 2, 2, 2)
        assert result.stats.retries == NUM_NODES
        assert result.stats.failed_shards == 0
        assert not result.partial

    def test_down_shard_raises_precise_error(self):
        injector = FaultInjector()
        injector.down("#shard2")
        cluster = make_cluster(injector, no_sleep_policy(3))
        with pytest.raises(ShardFailureError) as excinfo:
            cluster.execute("SELECT COUNT(*) FROM (SELECT * FROM Bench.data) x")
        assert excinfo.value.shard == 2
        assert excinfo.value.attempts == 3

    def test_down_shard_with_allow_partial_degrades(self):
        injector = FaultInjector()
        injector.down("#shard2")
        cluster = make_cluster(injector, no_sleep_policy(3), allow_partial=True)
        full = GreenplumCluster(NUM_NODES)
        result = cluster.execute("SELECT COUNT(*) FROM (SELECT * FROM Bench.data) x")
        assert result.partial
        assert result.stats.failed_shards == 1
        assert result.stats.retries == 2  # the two doomed retries of shard 2
        assert "partial" in result.plan_text
        # The surviving shards answer for their data only.
        lost = len(shard_records(wisconsin_records(NUM_RECORDS), NUM_NODES, "unique1")[2])
        assert result.scalar() == NUM_RECORDS - lost
        assert lost > 0

    def test_all_shards_down_raises_even_with_allow_partial(self):
        injector = FaultInjector()
        injector.down("greenplum")
        cluster = make_cluster(injector, no_sleep_policy(2), allow_partial=True)
        with pytest.raises(ShardFailureError, match="every shard"):
            cluster.execute("SELECT COUNT(*) FROM (SELECT * FROM Bench.data) x")

    def test_query_errors_are_not_shard_outages(self):
        cluster = make_cluster(None, no_sleep_policy(3), allow_partial=True)
        # A broken query must surface as a query error on every code path,
        # never be swallowed into a "partial" answer.
        with pytest.raises(ReproError) as excinfo:
            cluster.execute("SELECT nosuchcolumn+ FROM Bench.data x")
        assert not isinstance(excinfo.value, ShardFailureError)


# ----------------------------------------------------------------------
# End-to-end: PolyFrame expressions + benchmark bookkeeping
# ----------------------------------------------------------------------
def make_system(injector=None, policy=None, *, allow_partial=False):
    cluster = make_cluster(injector, policy, allow_partial=allow_partial)
    # The connector gets its own (empty) injector so env-driven global
    # injection (the CI chaos job) cannot skew the exact counts asserted
    # below; all faults come from the cluster-level injector.
    connector = PostgresConnector(cluster, fault_injector=FaultInjector())

    def create():
        df = PolyFrame("Bench", "data", connector)
        df2 = PolyFrame("Bench", "data2", connector)
        return df, df2

    return SystemUnderTest(
        "PolyFrame-Greenplum", "polyframe", create, engine=cluster, connector=connector
    )


class TestEndToEnd:
    def test_benchmark_expression_survives_first_attempt_failures(self):
        injector = FaultInjector()
        injector.fail_first(1)
        system = make_system(injector, no_sleep_policy(3))
        measurement = run_expression(
            system, expression(1), benchmark_params(), dataset="XS"
        )
        assert measurement.status == "ok"
        assert measurement.retries == NUM_NODES  # one retry per shard
        assert not measurement.degraded
        record = system.connector.send_log[-1]
        assert record.shard_retries == NUM_NODES
        assert record.outcome == "ok"

    def test_polyframe_filter_count_with_flaky_shards(self):
        injector = FaultInjector()
        injector.fail_first(1)
        system = make_system(injector, no_sleep_policy(3))
        df, _ = system.create_frames()
        count = len(df[df["ten"] == 3])
        expected = sum(1 for r in wisconsin_records(NUM_RECORDS) if r["ten"] == 3)
        assert count == expected
        assert injector.injected_faults() > 0

    def test_benchmark_expression_degrades_with_downed_shard(self):
        injector = FaultInjector()
        injector.down("#shard3")
        system = make_system(injector, no_sleep_policy(3), allow_partial=True)
        measurement = run_expression(
            system, expression(1), benchmark_params(), dataset="XS"
        )
        assert measurement.status == "ok"
        assert measurement.degraded
        assert measurement.retries == 2
        assert system.connector.send_log[-1].outcome == "partial"

    def test_shard_failure_propagates_without_allow_partial(self):
        injector = FaultInjector()
        injector.down("#shard3")
        system = make_system(injector, no_sleep_policy(3))
        df, _ = system.create_frames()
        with pytest.raises(ShardFailureError):
            len(df)
        assert system.connector.send_log[-1].outcome == "error"


# ----------------------------------------------------------------------
# Deterministic sharding (regression for PYTHONHASHSEED-dependent hash())
# ----------------------------------------------------------------------
class TestStableSharding:
    def test_pinned_placements(self):
        # crc32-of-repr placements are process-independent; pin them so a
        # hash change can never silently reshuffle shard layouts.
        assert [stable_hash(v) % 4 for v in (0, 1, 2, 3)] == [1, 3, 1, 3]
        assert [stable_hash(v) % 3 for v in (0, 1, 2, 3)] == [2, 2, 1, 1]
        assert stable_hash("Aaa") % 4 == 3
        assert stable_hash(None) % 4 == 1
        assert stable_hash(3.5) % 4 == 0

    def test_distinct_types_hash_distinctly(self):
        assert stable_hash(1) != stable_hash("1")

    def test_shard_records_uses_stable_hash(self):
        records = [{"k": v} for v in (0, 1, 2, 3)]
        shards = shard_records(records, 4, shard_key="k")
        assert [len(s) for s in shards] == [0, 2, 0, 2]
        assert shards[1] == [{"k": 0}, {"k": 2}]
        assert shards[3] == [{"k": 1}, {"k": 3}]


# ----------------------------------------------------------------------
# Process-wide (env-driven) injection, as used by the CI chaos job
# ----------------------------------------------------------------------
class TestGlobalInjection:
    @pytest.fixture(autouse=True)
    def reset_cache(self):
        _reset_global_resilience()
        yield
        _reset_global_resilience()

    def test_env_rate_injects_and_retries_transparently(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.25")
        monkeypatch.setenv("REPRO_FAULT_SEED", "2021")
        _reset_global_resilience()
        connector = single_node_connector()
        # Retry accounting needs every send to actually execute; under
        # REPRO_CACHE=1 the repeats would be served from cache instead.
        connector.result_cache = None
        for _ in range(20):
            assert connector.send("SELECT COUNT(*) FROM t x", "t").scalar() == 2
        attempts = sum(record.attempts for record in connector.send_log)
        assert len(connector.send_log) == 20
        assert attempts > 20  # some faults were injected and retried away

    def test_explicit_policy_wins_over_global_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        _reset_global_resilience()
        connector = single_node_connector(retry_policy=no_sleep_policy(2))
        with pytest.raises(TransientBackendError):
            connector.send("SELECT COUNT(*) FROM t x", "t")
        assert connector.send_log[-1].attempts == 2

    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_RATE", raising=False)
        _reset_global_resilience()
        connector = single_node_connector()
        assert connector.send("SELECT COUNT(*) FROM t x", "t").scalar() == 2
        assert connector.send_log[-1].attempts == 1
