"""Document collection unit tests (storage-level, below the pipeline)."""

from __future__ import annotations

import pytest

from repro.docstore.collection import Collection
from repro.errors import CatalogError


@pytest.fixture()
def collection():
    coll = Collection("things")
    coll.insert_many(
        [
            {"n": 3, "tag": "a"},
            {"n": 1, "tag": "b", "nested": {"deep": 7}},
            {"n": 2},
        ]
    )
    return coll


class TestInserts:
    def test_ids_assigned(self, collection):
        ids = [doc["_id"] for doc in collection.scan()]
        assert ids == [0, 1, 2]

    def test_existing_id_preserved(self):
        coll = Collection("c")
        coll.insert_many([{"_id": 99, "x": 1}])
        assert next(iter(coll.scan()))["_id"] == 99

    def test_count(self, collection):
        assert len(collection) == 3
        assert collection.estimated_document_count() == 3


class TestIndexes:
    def test_create_backfills(self, collection):
        collection.create_index("n")
        assert collection.has_index("n")
        assert len(collection.index("n")) == 3

    def test_lookup(self, collection):
        collection.create_index("n")
        matches = list(collection.index_lookup("n", 2))
        assert len(matches) == 1 and matches[0]["n"] == 2

    def test_dotted_path_index(self, collection):
        collection.create_index("nested.deep")
        matches = list(collection.index_lookup("nested.deep", 7))
        assert len(matches) == 1

    def test_missing_and_null_not_indexed(self):
        coll = Collection("c")
        coll.insert_many([{"v": 1}, {"v": None}, {}])
        coll.create_index("v")
        assert len(coll.index("v")) == 1

    def test_index_maintained_on_insert(self, collection):
        collection.create_index("n")
        collection.insert_many([{"n": 9}])
        assert list(collection.index_lookup("n", 9))

    def test_duplicate_index_rejected(self, collection):
        collection.create_index("n")
        with pytest.raises(CatalogError):
            collection.create_index("n")

    def test_drop_index(self, collection):
        collection.create_index("n")
        collection.drop_index("n")
        assert not collection.has_index("n")
        with pytest.raises(CatalogError):
            collection.drop_index("n")

    def test_unknown_index_lookup(self, collection):
        with pytest.raises(CatalogError):
            collection.index("nope")
