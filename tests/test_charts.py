"""Tests for the ASCII chart renderers."""

from __future__ import annotations

from repro.bench.charts import _bar, bar_chart, series_chart
from repro.bench.runner import Measurement, STATUS_OK, STATUS_OOM


def measurement(system, expr_id, expression_seconds, status=STATUS_OK):
    return Measurement(
        system=system,
        dataset="XS",
        expression_id=expr_id,
        status=status,
        creation_seconds=0.001,
        expression_seconds=expression_seconds,
    )


class TestBar:
    def test_empty_and_full(self):
        assert _bar(0.0, 10) == ""
        assert _bar(1.0, 10) == "█" * 10
        assert _bar(2.0, 10) == "█" * 10  # clamped

    def test_partial_cells(self):
        half = _bar(0.55, 10)
        assert 5 <= len(half) <= 6


class TestBarChart:
    def test_renders_all_systems(self):
        ms = [
            measurement("A", 1, 0.001),
            measurement("B", 1, 0.01),
            measurement("A", 2, 0.002),
            measurement("B", 2, 0.02),
        ]
        chart = bar_chart(ms, timing="expression", title="demo")
        assert "demo" in chart
        assert chart.count("E1") == 1 and chart.count("E2") == 1
        assert "10.00ms" in chart

    def test_failed_cells_show_status(self):
        ms = [measurement("A", 1, 0.001), measurement("B", 1, 0.0, STATUS_OOM)]
        chart = bar_chart(ms)
        assert "[oom]" in chart

    def test_longer_times_get_longer_bars(self):
        ms = [measurement("fast", 1, 0.0005), measurement("slow", 1, 0.5)]
        chart = bar_chart(ms)
        lines = {line.split()[0 + 1] if line.startswith("E1") else line.split()[0]: line
                 for line in chart.splitlines() if "ms" in line or "s" in line}
        fast_line = next(line for line in chart.splitlines() if "fast" in line)
        slow_line = next(line for line in chart.splitlines() if "slow" in line)
        assert fast_line.count("█") < slow_line.count("█")

    def test_no_measurements(self):
        assert "no successful measurements" in bar_chart([], title="t")


class TestSeriesChart:
    def test_renders_series(self):
        series = {1: {1: 1.0, 2: 1.9, 4: 3.5}, 4: {1: 1.0, 2: 2.0, 4: 3.9}}
        chart = series_chart(series, ideal=4.0, title="speedup")
        assert "speedup" in chart
        assert "3.50x" in chart and "4 nodes" in chart

    def test_empty_series(self):
        assert "no data" in series_chart({}, title="t")
