"""Property-based aggregation tests: engines vs naive Python evaluation."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore import MongoDatabase
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase

rows = st.lists(
    st.tuples(st.integers(0, 4), st.integers(-100, 100) | st.none()),
    min_size=1,
    max_size=60,
)


def naive_groups(pairs):
    out: dict[int, list] = {}
    for key, value in pairs:
        out.setdefault(key, []).append(value)
    return out


@settings(max_examples=25, deadline=None)
@given(rows)
def test_sql_group_aggregates_match_naive(pairs):
    db = SQLDatabase()
    db.create_table("t")
    db.insert("t", [{"k": key, "v": value} for key, value in pairs])
    result = db.execute(
        "SELECT k, COUNT(v) AS c, MAX(v) AS mx, MIN(v) AS mn, SUM(v) AS s "
        "FROM t x GROUP BY k"
    )
    got = {record["k"]: record for record in result.records}
    for key, values in naive_groups(pairs).items():
        present = [value for value in values if value is not None]
        assert got[key]["c"] == len(present)
        assert got[key]["mx"] == (max(present) if present else None)
        assert got[key]["mn"] == (min(present) if present else None)
        assert got[key]["s"] == (sum(present) if present else None)


@settings(max_examples=25, deadline=None)
@given(rows)
def test_sql_avg_std_match_naive(pairs):
    db = SQLDatabase()
    db.create_table("t")
    db.insert("t", [{"k": key, "v": value} for key, value in pairs])
    result = db.execute("SELECT AVG(v) AS a, STDDEV(v) AS s FROM t x")
    present = [value for _key, value in pairs if value is not None]
    record = result.records[0]
    if not present:
        assert record["a"] is None and record["s"] is None
        return
    mean = sum(present) / len(present)
    std = math.sqrt(sum((v - mean) ** 2 for v in present) / len(present))
    assert record["a"] == _approx(mean)
    assert record["s"] == _approx(std)


def _approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(rows)
def test_mongo_group_matches_naive(pairs):
    db = MongoDatabase(query_prep_overhead=0.0)
    db.create_collection("c")
    db.collection("c").insert_many(
        [{"k": key, "v": value} for key, value in pairs]
    )
    result = db.aggregate("c", [
        {"$group": {"_id": {"k": "$k"}, "mx": {"$max": "$v"}, "n": {"$sum": 1}}},
        {"$addFields": {"k": "$_id.k"}},
        {"$project": {"_id": 0}},
    ])
    got = {record["k"]: record for record in result.records}
    for key, values in naive_groups(pairs).items():
        present = [value for value in values if value is not None]
        assert got[key]["n"] == len(values)  # $sum: 1 counts documents
        assert got[key]["mx"] == (max(present) if present else None)


@settings(max_examples=25, deadline=None)
@given(rows)
def test_cypher_group_matches_naive(pairs):
    db = Neo4jDatabase(query_prep_overhead=0.0)
    db.load("d", [{"k": key, "v": value} for key, value in pairs])
    result = db.execute(
        "MATCH(t: d)\nWITH {'k': t.k, 'c': count(t.v), 'mx': max(t.v)} AS t\nRETURN t"
    )
    got = {record["k"]: record for record in result.records}
    for key, values in naive_groups(pairs).items():
        present = [value for value in values if value is not None]
        assert got[key]["c"] == len(present)
        assert got[key]["mx"] == (max(present) if present else None)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=50),
)
def test_distinct_counts_match_naive(tags):
    db = SQLDatabase()
    db.create_table("t")
    db.insert("t", [{"tag": tag} for tag in tags])
    result = db.execute('SELECT DISTINCT "tag" FROM t x')
    assert {record["tag"] for record in result.records} == set(tags)
