"""Property-based cross-engine agreement.

For randomly generated datasets and randomly chosen predicates, PolyFrame
over every backend must agree with a naive Python evaluation — the
strongest form of the paper's claim that one dataframe program means the
same thing on every target system.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.docstore import MongoDatabase
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB

records_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "a": st.integers(0, 20),
            "b": st.integers(-5, 5),
            "tag": st.sampled_from(["x", "y", "z"]),
        }
    ),
    min_size=1,
    max_size=40,
)


def build_frames(records):
    docs = [dict(record, id=index) for index, record in enumerate(records)]
    adb = AsterixDB(query_prep_overhead=0.0)
    adb.create_dataverse("P")
    adb.create_dataset("P", "d", primary_key="id")
    adb.load("P.d", docs)
    pg = SQLDatabase()
    pg.create_table("P.d", primary_key="id")
    pg.insert("P.d", docs)
    mongo = MongoDatabase(query_prep_overhead=0.0)
    mongo.create_collection("d")
    mongo.collection("d").insert_many(docs)
    neo = Neo4jDatabase(query_prep_overhead=0.0)
    neo.load("d", docs)
    return [
        PolyFrame("P", "d", AsterixDBConnector(adb)),
        PolyFrame("P", "d", PostgresConnector(pg)),
        PolyFrame("P", "d", MongoDBConnector(mongo)),
        PolyFrame("P", "d", Neo4jConnector(neo)),
    ]


@settings(max_examples=12, deadline=None)
@given(records_strategy, st.integers(0, 20))
def test_equality_filter_counts_agree(records, pivot):
    expected = sum(1 for record in records if record["a"] == pivot)
    for frame in build_frames(records):
        assert len(frame[frame["a"] == pivot]) == expected


@settings(max_examples=12, deadline=None)
@given(records_strategy, st.integers(0, 20), st.integers(0, 20))
def test_range_filter_counts_agree(records, low_raw, high_raw):
    low, high = min(low_raw, high_raw), max(low_raw, high_raw)
    expected = sum(1 for record in records if low <= record["a"] <= high)
    for frame in build_frames(records):
        assert len(frame[(frame["a"] >= low) & (frame["a"] <= high)]) == expected


@settings(max_examples=10, deadline=None)
@given(records_strategy)
def test_aggregates_agree(records):
    values = [record["a"] for record in records]
    for frame in build_frames(records):
        assert frame["a"].max() == max(values)
        assert frame["a"].min() == min(values)
        assert frame["a"].sum() == sum(values)
        assert frame["a"].count() == len(values)


@settings(max_examples=10, deadline=None)
@given(records_strategy)
def test_group_counts_agree(records):
    expected: dict[str, int] = {}
    for record in records:
        expected[record["tag"]] = expected.get(record["tag"], 0) + 1
    for frame in build_frames(records):
        result = frame.groupby("tag").agg("count").collect()
        count_col = next(c for c in result.columns if c.startswith("count"))
        got = {r["tag"]: r[count_col] for r in result.to_records()}
        assert got == expected


@settings(max_examples=10, deadline=None)
@given(records_strategy)
def test_sort_head_agrees(records):
    top = sorted((record["b"] for record in records), reverse=True)[:3]
    for frame in build_frames(records):
        result = frame.sort_values("b", ascending=False).head(3)
        assert result.column_values("b") == top


def build_profiling_variants(records):
    """One frame per (optimization level 0/1/2) x (row/vector engine).

    All six variants evaluate the same program, so their EXPLAIN ANALYZE
    row counts are directly comparable.
    """
    docs = [dict(record, id=index) for index, record in enumerate(records)]
    frames = []
    for exec_engine in ("row", "vector"):
        db = SQLDatabase(name=f"pg-{exec_engine}", exec_engine=exec_engine)
        db.create_table("P.d", primary_key="id")
        db.insert("P.d", docs)
        for level in (0, 1, 2):
            connector = PostgresConnector(db, optimization_level=level)
            frames.append((exec_engine, level, PolyFrame("P", "d", connector)))
    return frames


@settings(max_examples=10, deadline=None)
@given(records_strategy, st.integers(0, 20))
def test_explain_analyze_row_counts_differential(records, pivot):
    """EXPLAIN ANALYZE agrees across opt levels and row-vs-vector engines.

    The differential form of the analyze-mode guarantee: every variant
    reports the same final row count (the naive Python answer), and no
    filtering operator ever *grows* its input.
    """
    expected = sum(1 for record in records if record["a"] <= pivot)
    for exec_engine, level, frame in build_profiling_variants(records):
        profiled = frame[frame["a"] <= pivot][["a", "tag"]].profile()
        label = f"{exec_engine}/level{level}"
        assert len(profiled.frame) == expected, label
        root = profiled.profile
        assert root is not None, label
        assert root.rows_out == expected, label
        for node in root.walk():
            assert node.time_ns >= 0, label
            if node.rows_in is not None:
                is_filter = "Filter" in node.name or "Scan" in node.name
                if is_filter:
                    assert node.rows_out <= node.rows_in, (label, node.name)
