"""PolyFrame core tests: incremental query formation, laziness, actions.

The incremental-query-formation tests assert the *query text* PolyFrame
builds for the paper's Table I operation chain, per language — the core
artifact of the paper.
"""

from __future__ import annotations

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.core.series import PolySeries
from repro.errors import ConnectorError, RewriteError
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB
from repro.docstore import MongoDatabase


@pytest.fixture()
def users_asterix():
    db = AsterixDB(query_prep_overhead=0.0)
    db.create_dataverse("Test")
    db.create_dataset("Test", "Users", primary_key="id")
    db.load(
        "Test.Users",
        [
            {"id": i, "lang": "en" if i % 3 == 0 else "fr",
             "name": f"u{i}", "address": f"{i} Main St", "age": i % 20}
            for i in range(120)
        ],
    )
    return PolyFrame("Test", "Users", AsterixDBConnector(db))


class TestTableIQueryFormation:
    """The exact rewrites of Table I, per language."""

    def test_sqlpp_anchor(self, users_asterix):
        assert users_asterix.query == "SELECT VALUE t FROM Test.Users t"

    def test_sqlpp_chain(self, users_asterix):
        af = users_asterix
        chained = af[af["lang"] == "en"][["name", "address"]]
        assert chained.query == (
            "SELECT t.name, t.address FROM "
            "(SELECT VALUE t FROM "
            "(SELECT VALUE t FROM Test.Users t) t "
            "WHERE t.lang = 'en') t"
        )

    def test_sqlpp_comparison_series(self, users_asterix):
        series = users_asterix["lang"] == "en"
        assert series.statement == "t.lang = 'en'"
        assert series.query == (
            "SELECT VALUE t.lang = 'en' FROM (SELECT VALUE t FROM Test.Users t) t"
        )

    def test_sql_chain(self):
        db = SQLDatabase()
        db.create_table("Test.Users", primary_key="id")
        db.insert("Test.Users", [{"id": 1, "lang": "en", "name": "a", "address": "x"}])
        af = PolyFrame("Test", "Users", PostgresConnector(db))
        assert af.query == "SELECT * FROM Test.Users t"
        chained = af[af["lang"] == "en"][["name", "address"]]
        assert chained.query == (
            'SELECT t."name", t."address" FROM '
            "(SELECT * FROM "
            "(SELECT * FROM Test.Users t) t "
            "WHERE t.\"lang\" = 'en') t"
        )

    def test_mongo_chain_matches_fig4(self):
        db = MongoDatabase(query_prep_overhead=0.0)
        db.create_collection("Users")
        db.collection("Users").insert_many(
            [{"lang": "en", "name": "a", "address": "x"}]
        )
        af = PolyFrame("Test", "Users", MongoDBConnector(db))
        assert af.query == '{ "$match": {} }'
        chained = af[af["lang"] == "en"][["name", "address"]]
        pipeline = af.connector.preprocess(
            af.connector.rewriter.apply("limit", subquery=chained.query, num=10),
            "Users",
        )
        # Figure 4's pipeline: match {}, expr match, projections, limit.
        assert pipeline[0] == {"$match": {}}
        assert pipeline[1] == {"$match": {"$expr": {"$eq": ["$lang", "en"]}}}
        assert pipeline[2] == {"$project": {"name": 1, "address": 1}}
        assert pipeline[3] == {"$project": {"_id": 0}}
        assert pipeline[4] == {"$limit": 10}

    def test_cypher_chain(self):
        db = Neo4jDatabase(query_prep_overhead=0.0)
        db.load("Users", [{"lang": "en", "name": "a", "address": "x"}])
        af = PolyFrame("Test", "Users", Neo4jConnector(db))
        assert af.query == "MATCH(t: Users)"
        chained = af[af["lang"] == "en"][["name", "address"]]
        assert chained.query == (
            "MATCH(t: Users)\n"
            'WITH t WHERE t.lang = "en"\n'
            "WITH t{'name': t.name, 'address': t.address}"
        )


class TestLaziness:
    def test_transformations_send_nothing(self, users_asterix):
        connector = users_asterix.connector
        calls = []
        original_send = connector.send

        def counting_send(query, collection, **kwargs):
            calls.append(query)
            return original_send(query, collection, **kwargs)

        connector.send = counting_send
        try:
            af = users_asterix
            chained = af[af["lang"] == "en"][["name", "address"]]
            grouped = af.groupby("age").agg("count")
            ordered = af.sort_values("age", ascending=False)
            joined = af.merge(af, left_on="id", right_on="id")
            assert calls == []  # pure transformations: zero queries sent
            chained.head(3)
            assert len(calls) == 1
        finally:
            connector.send = original_send

    def test_filter_uses_condition_not_subquery(self, users_asterix):
        """The paper's footnote: df4 derives from df1 with df3's condition."""
        af = users_asterix
        mask = af["lang"] == "en"
        filtered = af[mask]
        assert mask.query not in filtered.query
        assert mask.statement in filtered.query


class TestActions:
    def test_head_returns_eager_frame(self, users_asterix):
        result = users_asterix.head(7)
        assert len(result) == 7
        assert "name" in result.columns

    def test_len_counts(self, users_asterix):
        assert len(users_asterix) == 120
        assert len(users_asterix[users_asterix["lang"] == "en"]) == 40

    def test_collect_everything(self, users_asterix):
        assert len(users_asterix.collect()) == 120

    def test_topandas_alias(self, users_asterix):
        assert len(users_asterix.toPandas()) == 120

    def test_series_aggregates(self, users_asterix):
        ages = users_asterix["age"]
        assert ages.max() == 19
        assert ages.min() == 0
        assert ages.count() == 120
        assert ages.sum() == sum(i % 20 for i in range(120))
        assert ages.mean() == pytest.approx(9.5)
        assert ages.std() == pytest.approx(5.766, abs=0.01)

    def test_series_head(self, users_asterix):
        result = users_asterix["name"].head(3)
        assert len(result) == 3

    def test_series_map_head(self, users_asterix):
        result = users_asterix["name"].map(str.upper).head(2)
        values = result.column_values(result.columns[0])
        assert values == ["U0", "U1"]

    def test_groupby_then_len(self, users_asterix):
        grouped = users_asterix.groupby("age").agg("count")
        assert len(grouped) == 20

    def test_groupby_value_column(self, users_asterix):
        result = users_asterix.groupby("lang")["age"].agg("max").collect()
        values = {r["lang"]: r["max_age"] for r in result.to_records()}
        assert values["en"] == 19

    def test_sort_head(self, users_asterix):
        result = users_asterix.sort_values("age", ascending=False).head(2)
        assert all(r["age"] == 19 for r in result.to_records())

    def test_describe(self, users_asterix):
        stats = users_asterix.describe()
        assert "age" in stats.columns
        assert stats.column_values("statistic") == ["count", "min", "max", "avg", "std"]

    def test_columns_via_sampling(self, users_asterix):
        assert set(users_asterix.columns) >= {"id", "lang", "name", "age"}

    def test_isna_count(self, users_asterix):
        assert len(users_asterix[users_asterix["age"].isna()]) == 0

    def test_explain_returns_query(self, users_asterix):
        assert users_asterix.explain() == users_asterix.query
        assert "PolyFrame" in repr(users_asterix)


class TestSeriesComposition:
    def test_arithmetic_statements(self, users_asterix):
        series = users_asterix["age"] + 1
        assert series.statement == "t.age + 1"
        assert (users_asterix["age"] * 2).statement == "t.age * 2"
        assert (users_asterix["age"] % 2).statement == "t.age % 2"
        assert (users_asterix["age"] - 1).statement == "t.age - 1"
        assert (users_asterix["age"] / 2).statement == "t.age / 2"

    def test_comparison_variants(self, users_asterix):
        age = users_asterix["age"]
        assert (age != 3).statement == "t.age != 3"
        assert (age > 3).statement == "t.age > 3"
        assert (age <= 3).statement == "t.age <= 3"
        assert (age >= 3).statement == "t.age >= 3"
        assert (age < 3).statement == "t.age < 3"

    def test_logical_composition(self, users_asterix):
        masked = (users_asterix["age"] == 1) & (users_asterix["lang"] == "en")
        assert masked.statement == "t.age = 1 AND t.lang = 'en'"
        inverted = ~(users_asterix["age"] == 1)
        assert inverted.statement == "NOT (t.age = 1)"

    def test_series_vs_series_comparison(self, users_asterix):
        mask = users_asterix["age"] == users_asterix["id"]
        assert mask.statement == "t.age = t.id"

    def test_logical_requires_series(self, users_asterix):
        with pytest.raises(TypeError):
            (users_asterix["age"] == 1) & 5

    def test_mongo_requires_plain_columns(self):
        db = MongoDatabase(query_prep_overhead=0.0)
        db.create_collection("Users")
        db.collection("Users").insert_many([{"a": 1}])
        af = PolyFrame("", "Users", MongoDBConnector(db))
        derived = af["a"] + 1
        with pytest.raises(RewriteError):
            derived == 5  # noqa: B015 — composing on a computed column

    def test_unknown_map_function(self, users_asterix):
        with pytest.raises(RewriteError):
            users_asterix["name"].map(reversed)


class TestValidation:
    def test_missing_dataset_rejected(self):
        db = AsterixDB(query_prep_overhead=0.0)
        db.create_dataverse("Test")
        with pytest.raises(ConnectorError):
            PolyFrame("Test", "Nope", AsterixDBConnector(db))

    def test_cross_connector_join_rejected(self, users_asterix):
        other_db = SQLDatabase()
        other_db.create_table("Test.Users", primary_key="id")
        other_db.insert("Test.Users", [{"id": 1}])
        other = PolyFrame("Test", "Users", PostgresConnector(other_db))
        with pytest.raises(ConnectorError):
            users_asterix.merge(other, left_on="id", right_on="id")

    def test_only_inner_joins(self, users_asterix):
        with pytest.raises(RewriteError):
            users_asterix.merge(users_asterix, left_on="id", right_on="id", how="left")

    def test_bad_index_type(self, users_asterix):
        with pytest.raises(TypeError):
            users_asterix[42]

    def test_series_without_query(self):
        series = PolySeries(None, "c", "base", "stmt")
        with pytest.raises(RewriteError):
            series.query


class TestBackendPlan:
    def test_sql_family_exposes_plans(self, users_asterix):
        plan = users_asterix[users_asterix["lang"] == "en"].backend_plan()
        assert "== physical ==" in plan
        assert "IndexEqualityScan" in plan or "Filter" in plan

    def test_other_backends_raise(self):
        from repro.docstore import MongoDatabase

        db = MongoDatabase(query_prep_overhead=0.0)
        db.create_collection("c")
        db.collection("c").insert_many([{"a": 1}])
        frame = PolyFrame("", "c", MongoDBConnector(db))
        with pytest.raises(ConnectorError):
            frame.backend_plan()
