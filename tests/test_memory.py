"""Unit tests for the per-query memory layer (`repro.exec.memory`).

Budget parsing and validation, byte accounting, the spill-run file
format, and the two spilling data structures' core invariant: spilled
output is byte-identical to the in-memory path (stable merge order for
sorts, first-seen group order for aggregation).
"""

from __future__ import annotations

import gc
import os
import random
import tempfile

import pytest

from repro.obs.trace import get_tracer

from repro.errors import ReproError
from repro.exec.memory import (
    ENV_MEM_BUDGET,
    MemoryBudget,
    SpillFile,
    SpillSorter,
    SpillableGroups,
    estimate_record_bytes,
    parse_budget,
    resolve_budget,
)


class TestParseBudget:
    def test_plain_bytes(self):
        assert parse_budget("4096") == 4096

    @pytest.mark.parametrize(
        "text,expected",
        [("4k", 4 * 1024), ("2m", 2 * 1024**2), ("1g", 1024**3), ("64K", 64 * 1024)],
    )
    def test_suffixes(self, text, expected):
        assert parse_budget(text) == expected

    def test_empty_and_zero_mean_unlimited(self):
        assert parse_budget("") is None
        assert parse_budget("  ") is None
        assert parse_budget("0") is None

    @pytest.mark.parametrize("bad", ["64mb", "lots", "1.5m", "k", "-1"])
    def test_malformed_raises_naming_value(self, bad):
        with pytest.raises(ReproError) as exc:
            parse_budget(bad)
        assert repr(bad) in str(exc.value)

    def test_resolve_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_MEM_BUDGET, "1k")
        assert resolve_budget(4096) == 4096
        assert resolve_budget("2k") == 2048

    def test_resolve_falls_back_to_env(self, monkeypatch):
        monkeypatch.setenv(ENV_MEM_BUDGET, "8k")
        assert resolve_budget() == 8 * 1024
        monkeypatch.delenv(ENV_MEM_BUDGET)
        assert resolve_budget() is None

    def test_resolve_rejects_malformed_env(self, monkeypatch):
        monkeypatch.setenv(ENV_MEM_BUDGET, "plenty")
        with pytest.raises(ReproError) as exc:
            resolve_budget()
        assert "'plenty'" in str(exc.value)

    def test_resolve_rejects_negative_int(self):
        with pytest.raises(ReproError):
            resolve_budget(-1)


class TestMemoryBudget:
    def test_reserve_release_and_peak(self):
        budget = MemoryBudget(1000)
        budget.reserve(400)
        budget.reserve(300)
        assert budget.used_bytes == 700
        assert budget.peak_bytes == 700
        budget.release(500)
        assert budget.used_bytes == 200
        assert budget.peak_bytes == 700  # the peak never shrinks

    def test_would_exceed(self):
        budget = MemoryBudget(100)
        budget.reserve(80)
        assert budget.would_exceed(21)
        assert not budget.would_exceed(20)
        unlimited = MemoryBudget(None)
        unlimited.reserve(10**9)
        assert not unlimited.would_exceed(10**9)

    def test_release_floors_at_zero(self):
        budget = MemoryBudget(100)
        budget.reserve(10)
        budget.release(50)
        assert budget.used_bytes == 0

    def test_note_spill(self):
        budget = MemoryBudget(100)
        budget.note_spill(512)
        budget.note_spill(256)
        assert budget.spill_bytes == 768
        assert budget.spill_runs == 2

    def test_estimate_monotone_in_record_count(self):
        one = estimate_record_bytes({"a": 1})
        assert one > 0
        assert estimate_record_bytes({"a": 1, "b": "xy"}) > one


class TestSpillFile:
    def test_runs_round_trip_in_order(self):
        with SpillFile() as spill:
            run_a, nbytes_a = spill.write_run([{"i": i} for i in range(10)])
            run_b, nbytes_b = spill.write_run([{"j": j} for j in range(5)])
            assert nbytes_a > 0 and nbytes_b > 0
            assert spill.run_count == 2
            assert list(spill.read_run(run_a)) == [{"i": i} for i in range(10)]
            assert list(spill.read_run(run_b)) == [{"j": j} for j in range(5)]

    def test_interleaved_readers_keep_positions(self):
        # A k-way merge reads every run concurrently; each reader must
        # keep its own file position.
        with SpillFile() as spill:
            spill.write_run(list(range(0, 100, 2)))
            spill.write_run(list(range(1, 100, 2)))
            merged = []
            readers = [spill.read_run(0), spill.read_run(1)]
            for a, b in zip(*readers):
                merged += [a, b]
            assert merged == list(range(100))


class TestSpillSorter:
    def _sorted(self, rows, budget):
        sorter = SpillSorter(budget)
        for row in rows:
            sorter.add(row["k"], row)
        spilled_before_drain = sorter.spilled
        return list(sorter.sorted_records()), spilled_before_drain

    def test_spilled_order_matches_in_memory_stable_sort(self):
        rng = random.Random(7)
        rows = [{"k": rng.randrange(10), "seq": i} for i in range(500)]
        expected = sorted(rows, key=lambda r: r["k"])  # stable
        spilled, did_spill = self._sorted(rows, MemoryBudget(2048))
        assert did_spill
        assert spilled == expected
        unspilled, did_spill = self._sorted(rows, MemoryBudget(None))
        assert not did_spill
        assert unspilled == expected

    def test_many_tiny_runs_merge_correctly(self):
        rng = random.Random(11)
        rows = [{"k": rng.randrange(1000), "seq": i} for i in range(300)]
        budget = MemoryBudget(256)  # a few records per run
        spilled, _ = self._sorted(rows, budget)
        assert budget.spill_runs > 10
        assert spilled == sorted(rows, key=lambda r: r["k"])

    def test_budget_accounting_and_spill_counters(self):
        budget = MemoryBudget(2048)
        rows = [{"k": i % 5, "pad": "x" * 50} for i in range(200)]
        out, _ = self._sorted(rows, budget)
        assert len(out) == 200
        assert budget.peak_bytes > 0
        assert budget.limit_bytes is not None
        assert budget.peak_bytes <= budget.limit_bytes + 1024  # one-record slack
        assert budget.spill_bytes > 0
        assert budget.used_bytes == 0  # fully released after the merge

    def test_close_releases_budget_on_error(self):
        # A query that dies mid-sort must not leak its reservations: the
        # pipeline's close propagation calls sorted_records().close()
        # via generator shutdown.
        budget = MemoryBudget(None)
        sorter = SpillSorter(budget)
        for i in range(50):
            sorter.add(i, {"k": i})
        assert budget.used_bytes > 0
        stream = sorter.sorted_records()
        next(stream)
        stream.close()  # simulates the error/early-abandon path
        assert budget.used_bytes == 0


class TestSpillableGroups:
    def _grouped(self, keys, budget):
        groups = SpillableGroups(budget)
        for i, key in enumerate(keys):
            state = groups.get(key)
            if state is None:
                groups.insert(key, {"key": key, "n": 1}, nbytes=200)
            else:
                state["n"] += 1
        merged = list(groups.finalized(self._merge))
        return merged

    @staticmethod
    def _merge(acc, new):
        acc["n"] += new["n"]
        return acc

    def test_spilled_groups_match_insertion_order_and_counts(self):
        rng = random.Random(3)
        keys = [rng.randrange(20) for _ in range(400)]
        expected: dict[int, int] = {}
        for key in keys:
            expected[key] = expected.get(key, 0) + 1
        in_memory = self._grouped(keys, MemoryBudget(None))
        spilled = self._grouped(keys, MemoryBudget(1024))
        assert in_memory == [{"key": k, "n": n} for k, n in expected.items()]
        assert spilled == in_memory  # same groups, same first-seen order

    def test_spill_resets_table_and_reaccumulates(self):
        budget = MemoryBudget(1024)
        groups = SpillableGroups(budget)
        for i in range(40):
            groups.insert(i, {"key": i, "n": 1}, nbytes=200)
        assert groups.spilled
        assert budget.spill_runs > 0
        assert len(groups) < 40  # the table restarted after each spill

    def test_close_releases_budget(self):
        budget = MemoryBudget(None)
        groups = SpillableGroups(budget)
        for i in range(10):
            groups.insert(i, {"key": i}, nbytes=300)
        assert budget.used_bytes > 0
        groups.close()
        assert budget.used_bytes == 0


class TestSpillFileCleanup:
    """Spill temp files must never outlive their query.

    ``tempfile.TemporaryFile`` unlinks on creation, so the resource that
    can actually leak is the open file handle — these tests pin that
    every handle a query opens is closed again, on explicit ``close()``
    and when a half-drained ``StreamingResultSet`` is abandoned.
    """

    @staticmethod
    def _track_spill_handles(monkeypatch):
        created = []
        original = tempfile.TemporaryFile

        def tracking(*args, **kwargs):
            handle = original(*args, **kwargs)
            if kwargs.get("prefix", "").startswith("repro-spill-"):
                created.append(handle)
            return handle

        monkeypatch.setattr(tempfile, "TemporaryFile", tracking)
        return created

    def test_close_closes_backing_file(self):
        spill = SpillFile()
        handle = spill._file
        spill.write_run([{"v": 1}])
        assert not handle.closed
        spill.close()
        assert handle.closed
        spill.close()  # idempotent

    def test_sorter_close_closes_spill_file(self, monkeypatch):
        created = self._track_spill_handles(monkeypatch)
        budget = MemoryBudget(1024)
        sorter = SpillSorter(budget)
        for i in range(50):
            sorter.add(i, {"v": i, "pad": "x" * 200})
        assert created, "the tiny budget must have forced a spill"
        sorter.close()
        assert all(handle.closed for handle in created)

    def _streaming_sort(self, monkeypatch):
        from repro.sqlengine import SQLDatabase
        from repro.wisconsin import loaders, wisconsin_records

        created = self._track_spill_handles(monkeypatch)
        db = SQLDatabase(name="postgres", memory_budget="2k")
        loaders.load_postgres(
            db, "Bench", "data", wisconsin_records(120), indexes=False
        )
        result = db.execute(
            'SELECT * FROM Bench.data t ORDER BY t."unique1"', stream=True
        )
        iterator = result.iter_records()
        next(iterator)  # half-drained: the sort's spill file is open
        assert created, "the tiny budget must have forced a spill"
        return created, result, iterator

    @pytest.mark.skipif(
        get_tracer() is not None
        or os.environ.get("REPRO_EXEC", "").strip().lower() == "vector",
        reason="the half-drained-sort premise is row-engine streaming: "
        "tracing materializes streams, and the vector sort finishes its "
        "spill runs before the first record comes out",
    )
    def test_streaming_abandonment_via_close(self, monkeypatch):
        created, result, _iterator = self._streaming_sort(monkeypatch)
        assert any(not handle.closed for handle in created)
        result.close()
        assert all(handle.closed for handle in created)

    def test_streaming_abandonment_via_gc(self, monkeypatch):
        created, result, iterator = self._streaming_sort(monkeypatch)
        del result, iterator
        gc.collect()
        assert all(handle.closed for handle in created)
