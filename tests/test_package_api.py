"""Public API surface tests."""

from __future__ import annotations

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_aframe_alias():
    assert repro.AFrame is repro.PolyFrame


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_subpackages_import():
    import repro.bench
    import repro.cluster
    import repro.core
    import repro.docstore
    import repro.eager
    import repro.graphdb
    import repro.sqlengine
    import repro.sqlpp
    import repro.storage
    import repro.wisconsin

    for module in (
        repro.bench, repro.cluster, repro.core, repro.docstore, repro.eager,
        repro.graphdb, repro.sqlengine, repro.sqlpp, repro.storage,
        repro.wisconsin,
    ):
        assert module.__doc__, module.__name__


def test_every_public_module_has_docstring():
    import importlib
    import pkgutil

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        assert module.__doc__, f"{info.name} lacks a module docstring"
