"""Streaming execution parity: budgets never change answers.

The core guarantee of the streaming/spill refactor: all 13 Table III
expressions, on all four backends, produce byte-identical results with
an unlimited budget and with an artificially tiny budget that forces
spilling — and the engines' streaming results match their materialized
results record for record.
"""

from __future__ import annotations

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.docstore import MongoDatabase
from repro.errors import ReproError
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB
from repro.wisconsin import loaders, wisconsin_records

RECORDS = 300
BACKENDS = ("postgres", "asterixdb", "mongodb", "neo4j")
#: Small enough to force sort/group spill on every backend that spills,
#: large enough to hold one record plus operator slack.
TINY_BUDGET = "2k"

API = DataFrameAPI()
PARAMS = benchmark_params()


def _build(backend: str, budget: int | str | None):
    records = wisconsin_records(RECORDS)
    if backend == "postgres":
        db = SQLDatabase(name="postgres")
        loaders.load_postgres(db, "Bench", "data", records, indexes=False)
        loaders.load_postgres(db, "Bench", "data2", records, indexes=False)
        connector = PostgresConnector(db, memory_budget=budget)
    elif backend == "asterixdb":
        db = AsterixDB(query_prep_overhead=0.0)
        loaders.load_asterixdb(db, "Bench", "data", records, indexes=False)
        loaders.load_asterixdb(db, "Bench", "data2", records, indexes=False)
        connector = AsterixDBConnector(db, memory_budget=budget)
    elif backend == "mongodb":
        db = MongoDatabase(query_prep_overhead=0.0)
        loaders.load_mongodb(db, "data", records, indexes=False)
        loaders.load_mongodb(db, "data2", records, indexes=False)
        connector = MongoDBConnector(db, memory_budget=budget)
    else:
        db = Neo4jDatabase(query_prep_overhead=0.0)
        loaders.load_neo4j(db, "data", records, indexes=False)
        loaders.load_neo4j(db, "data2", records, indexes=False)
        connector = Neo4jConnector(db, memory_budget=budget)
    frames = (
        PolyFrame("Bench", "data", connector),
        PolyFrame("Bench", "data2", connector),
    )
    return db, connector, frames


@pytest.fixture(scope="module")
def systems():
    """Per backend: the same data loaded unbudgeted and tiny-budgeted."""
    return {
        backend: (_build(backend, None), _build(backend, TINY_BUDGET))
        for backend in BACKENDS
    }


def _normalize(value):
    if hasattr(value, "to_records"):
        return value.to_records()
    return value


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("expr", EXPRESSIONS, ids=[f"e{e.id}" for e in EXPRESSIONS])
def test_expression_parity_under_tiny_budget(systems, backend, expr):
    (_, _, free_frames), (_, _, tiny_frames) = systems[backend]
    free = _normalize(expr.run(free_frames[0], free_frames[1], PARAMS, API))
    tiny = _normalize(expr.run(tiny_frames[0], tiny_frames[1], PARAMS, API))
    assert free == tiny, f"expression {expr.id} differs under budget on {backend}"


@pytest.mark.parametrize("backend", BACKENDS)
def test_tiny_budget_is_actually_enforced(systems, backend):
    """The parity above is vacuous unless the budget engaged.

    Every backend must report a bounded accounted peak; the spilling
    backends must have spilled.  The graph engine's records hold live
    store references (not picklable), so it accounts memory without
    spilling to disk — the documented fallback.
    """
    (_, _, _), (_, connector, tiny_frames) = systems[backend]
    mark = len(connector.send_log)
    tiny_frames[0].sort_values("unique1").collect()
    sends = connector.send_log[mark:]
    assert any(record.peak_mem_bytes > 0 for record in sends)
    if backend != "neo4j":
        assert any(record.spill_bytes > 0 for record in sends)


class TestEngineStreamedEqualsMaterialized:
    """db.execute(stream=True) drains to the same records as stream=False."""

    QUERIES_SQL = [
        'SELECT * FROM Bench.data t ORDER BY t."ten", t."unique2" DESC',
        'SELECT t."ten" AS k, COUNT(*) AS n FROM Bench.data t GROUP BY t."ten"',
        'SELECT * FROM Bench.data t WHERE t."two" = 0 ORDER BY t."unique1" LIMIT 17',
    ]

    def test_sql_and_sqlpp(self, systems):
        for backend in ("postgres", "asterixdb"):
            (db, _, _), (tiny_db, _, _) = systems[backend]
            for query in self.QUERIES_SQL:
                if backend == "asterixdb":
                    query = query.replace('"', "")
                expected = db.execute(query).records
                for engine in (db, tiny_db):
                    streamed = list(engine.execute(query, stream=True).iter_records())
                    assert streamed == expected, (backend, query)

    def test_mongo(self, systems):
        (db, _, _), (tiny_db, _, _) = systems["mongodb"]
        pipelines = [
            [{"$sort": {"ten": 1, "unique2": -1}}],
            [{"$group": {"_id": "$ten", "n": {"$sum": 1}}}],
            [{"$sort": {"unique1": 1}}, {"$limit": 17}],
        ]
        for pipeline in pipelines:
            expected = db.aggregate("data", pipeline).records
            for engine in (db, tiny_db):
                streamed = list(
                    engine.aggregate("data", pipeline, stream=True).iter_records()
                )
                assert streamed == expected, pipeline

    def test_neo4j(self, systems):
        (db, _, _), (tiny_db, _, _) = systems["neo4j"]
        queries = [
            "MATCH(t: data)\nWITH t ORDER BY t.ten, t.unique2 DESC\nRETURN t",
            "MATCH(t: data)\nWITH t ORDER BY t.unique1 DESC\nRETURN t\nLIMIT 17",
        ]
        for cypher in queries:
            expected = db.execute(cypher).records
            for engine in (db, tiny_db):
                streamed = list(engine.execute(cypher, stream=True).iter_records())
                assert streamed == expected, cypher


class TestClientStreaming:
    def test_iter_batches_matches_collect(self, systems):
        for backend in BACKENDS:
            (_, _, _), (_, _, tiny_frames) = systems[backend]
            frame = tiny_frames[0].sort_values("unique1")
            expected = frame.collect().to_records()
            rows = []
            for chunk in frame.iter_batches(batch_size=64):
                chunk_rows = chunk.to_records()
                assert 0 < len(chunk_rows) <= 64
                rows.extend(chunk_rows)
            assert rows == expected, backend

    @pytest.mark.parametrize("bad", [0, -3, 2.5, "64", True])
    def test_iter_batches_rejects_bad_batch_size(self, systems, bad):
        (_, _, frames), _ = systems["postgres"]
        with pytest.raises(ReproError) as exc:
            frames[0].iter_batches(batch_size=bad)
        assert repr(bad) in str(exc.value)

    @pytest.mark.parametrize("bad", [0, -1, "many"])
    def test_send_stream_rejects_bad_batch_size(self, systems, bad):
        (_, connector, _), _ = systems["postgres"]
        with pytest.raises(ReproError) as exc:
            connector.send_stream("SELECT * FROM Bench.data t", "data", batch_size=bad)
        assert repr(bad) in str(exc.value)

    def test_malformed_env_budget_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEM_BUDGET", "a-lot")
        with pytest.raises(ReproError) as exc:
            SQLDatabase(name="postgres")
        assert "'a-lot'" in str(exc.value)

    def test_streaming_send_restamps_log_after_drain(self, systems):
        _, (_, connector, tiny_frames) = systems["postgres"]
        # Restamping asserts drain-dependent engine stats; under
        # REPRO_CACHE=1 a repeat of this query is a materialized cache
        # hit with no pipeline to drain, so run it uncached.
        connector.result_cache = None
        mark = len(connector.send_log)
        stream = tiny_frames[0].sort_values("unique1").iter_batches(batch_size=32)
        first = next(stream)
        assert len(first.to_records()) == 32
        stream.close()  # abandoning the stream still finalizes the log
        record = connector.send_log[mark]
        assert record.peak_mem_bytes > 0
        assert record.spill_bytes > 0

    def test_early_close_releases_streaming_result(self, systems):
        (db, _, _), _ = systems["postgres"]
        result = db.execute(
            'SELECT * FROM Bench.data t ORDER BY t."unique1"', stream=True
        )
        iterator = result.iter_records()
        next(iterator)
        result.close()
        assert not result.streaming
        # stats were stamped by the close propagation
        assert result.stats.peak_mem_bytes > 0
