"""End-to-end SQL engine tests: execution semantics and plan selection."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.sqlengine import OptimizerFeatures, SQLDatabase


@pytest.fixture()
def db():
    database = SQLDatabase()
    database.create_table("Test.Users", primary_key="id")
    database.insert(
        "Test.Users",
        [
            {
                "id": i,
                "age": i % 40,
                "lang": ["en", "fr", "de"][i % 3],
                "name": f"user{i}",
                "score": None if i % 10 == 0 else i % 7,
            }
            for i in range(400)
        ],
    )
    database.create_index("Test.Users", "age")
    database.create_index("Test.Users", "lang")
    database.create_index("Test.Users", "score")
    database.analyze("Test.Users")
    return database


class TestBasicQueries:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM Test.Users t LIMIT 3")
        assert len(result) == 3
        assert set(result.records[0]) == {"id", "age", "lang", "name", "score"}

    def test_projection(self, db):
        result = db.execute("SELECT t.name, t.age FROM Test.Users t LIMIT 1")
        assert set(result.records[0]) == {"name", "age"}

    def test_count(self, db):
        assert db.execute("SELECT COUNT(*) FROM Test.Users t").scalar() == 400

    def test_where_filters(self, db):
        result = db.execute("SELECT * FROM Test.Users t WHERE t.lang = 'en'")
        assert len(result) == 134
        assert all(r["lang"] == "en" for r in result.records)

    def test_compound_predicate(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM Test.Users t WHERE t.age > 10 AND t.lang = 'fr'"
        )
        expected = len([i for i in range(400) if i % 40 > 10 and i % 3 == 1])
        assert result.scalar() == expected

    def test_or_predicate(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM Test.Users t WHERE t.age = 0 OR t.age = 1"
        )
        assert result.scalar() == 20

    def test_aggregates(self, db):
        result = db.execute(
            "SELECT MIN(age), MAX(age), SUM(age), AVG(age), COUNT(age) FROM Test.Users t"
        )
        record = result.records[0]
        assert record["min"] == 0 and record["max"] == 39
        assert record["count"] == 400
        assert record["avg"] == pytest.approx(19.5)

    def test_aggregate_skips_nulls(self, db):
        result = db.execute("SELECT COUNT(score) FROM Test.Users t")
        assert result.scalar() == 360

    def test_group_by(self, db):
        result = db.execute(
            "SELECT lang, COUNT(lang) AS cnt FROM Test.Users t GROUP BY lang"
        )
        counts = {r["lang"]: r["cnt"] for r in result.records}
        assert counts == {"en": 134, "fr": 133, "de": 133}

    def test_group_by_max(self, db):
        result = db.execute(
            "SELECT lang, MAX(age) AS m FROM Test.Users t GROUP BY lang"
        )
        assert all(r["m"] == 39 for r in result.records)

    def test_order_by_limit(self, db):
        result = db.execute(
            "SELECT * FROM Test.Users t ORDER BY age DESC LIMIT 5"
        )
        assert [r["age"] for r in result.records] == [39] * 5

    def test_order_by_ascending(self, db):
        result = db.execute("SELECT * FROM Test.Users t ORDER BY id LIMIT 3")
        assert [r["id"] for r in result.records] == [0, 1, 2]

    def test_offset(self, db):
        result = db.execute("SELECT * FROM Test.Users t ORDER BY id LIMIT 2 OFFSET 2")
        assert [r["id"] for r in result.records] == [2, 3]

    def test_scalar_functions(self, db):
        result = db.execute("SELECT upper(t.name) AS u FROM Test.Users t LIMIT 1")
        assert result.records[0]["u"] == "USER0"

    def test_is_null(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM Test.Users t WHERE score IS NULL"
        )
        assert result.scalar() == 40

    def test_is_not_null(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM Test.Users t WHERE score IS NOT NULL"
        )
        assert result.scalar() == 360

    def test_distinct(self, db):
        result = db.execute('SELECT DISTINCT "lang" FROM Test.Users t')
        assert len(result) == 3

    def test_arithmetic_in_projection(self, db):
        result = db.execute("SELECT t.age + 1 AS next FROM Test.Users t WHERE t.id = 5")
        assert result.records[0]["next"] == 6

    def test_empty_aggregate_returns_row(self, db):
        result = db.execute("SELECT COUNT(*) FROM Test.Users t WHERE age = 999")
        assert result.scalar() == 0

    def test_join(self, db):
        db.create_table("Test.Extra", primary_key="id")
        db.insert("Test.Extra", [{"id": i, "tag": f"t{i}"} for i in range(50)])
        result = db.execute(
            "SELECT COUNT(*) FROM (SELECT l.*, r.* FROM (SELECT * FROM Test.Users) l "
            "INNER JOIN (SELECT * FROM Test.Extra) r ON l.id = r.id) t"
        )
        assert result.scalar() == 50


class TestNullSemantics:
    def test_comparison_with_null_filters_out(self, db):
        # score IS NULL rows must not appear in score = n for any n.
        total = db.execute(
            "SELECT COUNT(*) FROM Test.Users t WHERE score = 0 OR score != 0"
        ).scalar()
        assert total == 360

    def test_null_arithmetic_propagates(self, db):
        result = db.execute(
            "SELECT t.score + 1 AS s FROM Test.Users t WHERE t.id = 0"
        )
        # id=0 has score NULL; NULL + 1 is NULL, kept as an explicit column.
        assert result.records[0] == {"s": None}


class TestPlanSelection:
    def test_equality_uses_index(self, db):
        plan = db.explain("SELECT * FROM Test.Users t WHERE t.lang = 'en'")
        assert "IndexEqualityScan" in plan

    def test_range_uses_index(self, db):
        plan = db.explain(
            "SELECT * FROM Test.Users t WHERE t.age >= 10 AND t.age <= 20"
        )
        assert "IndexScan" in plan

    def test_min_max_index_only(self, db):
        result = db.execute("SELECT MAX(age) FROM Test.Users t")
        assert result.scalar() == 39
        assert result.stats.heap_fetches == 0

    def test_min_skips_absent_index_entries(self, db):
        result = db.execute("SELECT MIN(score) FROM Test.Users t")
        assert result.scalar() == 0  # not None, despite NULLs in the index
        assert result.stats.heap_fetches == 0

    def test_backward_index_scan_bounded(self, db):
        result = db.execute("SELECT * FROM Test.Users t ORDER BY age DESC LIMIT 5")
        assert result.stats.heap_fetches == 5
        assert result.stats.full_scans == 0

    def test_is_null_count_is_index_only(self, db):
        result = db.execute("SELECT COUNT(*) FROM Test.Users t WHERE score IS NULL")
        assert result.stats.heap_fetches == 0

    def test_subquery_flattening(self, db):
        nested = (
            "SELECT t.name FROM (SELECT * FROM (SELECT * FROM Test.Users t) t "
            "WHERE t.lang = 'en') t LIMIT 10"
        )
        plan = db.explain(nested)
        assert "DerivedBind" not in plan
        assert "IndexEqualityScan" in plan

    def test_greenplum_features_disable_optimizations(self, db):
        old = SQLDatabase(OptimizerFeatures.greenplum())
        old.create_table("Test.Users", primary_key="id")
        old.insert("Test.Users", [{"id": i, "age": i % 40} for i in range(100)])
        old.create_index("Test.Users", "age")
        max_result = old.execute("SELECT MAX(age) FROM Test.Users t")
        assert max_result.scalar() == 39
        assert max_result.stats.heap_fetches > 0  # no index-only plan
        sort_result = old.execute(
            "SELECT * FROM Test.Users t ORDER BY age DESC LIMIT 5"
        )
        assert sort_result.stats.full_scans == 1  # no backward index scan

    def test_unoptimized_features_scan_everything(self, db):
        raw = SQLDatabase(OptimizerFeatures.unoptimized())
        raw.create_table("t")
        raw.insert("t", [{"a": i} for i in range(10)])
        raw.create_index("t", "a")
        result = raw.execute("SELECT * FROM (SELECT * FROM t) x WHERE a = 3")
        assert result.stats.full_scans == 1
        assert len(result) == 1

    def test_explain_includes_both_phases(self, db):
        plan = db.explain("SELECT COUNT(*) FROM Test.Users t")
        assert "== logical ==" in plan and "== physical ==" in plan


class TestErrors:
    def test_unknown_table(self, db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM nope t")

    def test_unknown_function(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT frobnicate(age) FROM Test.Users t LIMIT 1")

    def test_group_by_without_aggregate_acts_as_distinct(self, db):
        result = db.execute("SELECT age FROM Test.Users t GROUP BY age")
        assert sorted(r["age"] for r in result.records) == list(range(40))

    def test_order_by_aggregate_output(self, db):
        result = db.execute(
            "SELECT lang, COUNT(lang) AS cnt FROM Test.Users t "
            "GROUP BY lang ORDER BY cnt DESC"
        )
        counts = [r["cnt"] for r in result.records]
        assert counts == sorted(counts, reverse=True)

    def test_incomparable_types(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT * FROM Test.Users t WHERE name > 5")


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=80),
    st.integers(0, 30),
)
def test_property_filter_count_matches_python(values, threshold):
    db = SQLDatabase()
    db.create_table("t")
    db.insert("t", [{"v": value} for value in values])
    db.create_index("t", "v")
    got = db.execute(f"SELECT COUNT(*) FROM t WHERE v >= {threshold}").scalar()
    assert got == sum(1 for value in values if value >= threshold)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(-20, 20), min_size=1, max_size=60))
def test_property_order_by_matches_sorted(values):
    db = SQLDatabase()
    db.create_table("t")
    db.insert("t", [{"v": value} for value in values])
    result = db.execute("SELECT * FROM t ORDER BY v")
    assert [r["v"] for r in result.records] == sorted(values)
