"""SQL++ / AsterixDB engine tests: open records, MISSING semantics, traits."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError
from repro.sqlpp import AsterixDB


@pytest.fixture()
def adb():
    db = AsterixDB(query_prep_overhead=0.0)
    db.create_dataverse("Test")
    db.create_dataset("Test", "Users", primary_key="id")
    records = []
    for i in range(300):
        record = {"id": i, "age": i % 30, "lang": ["en", "fr"][i % 2]}
        if i % 10 != 0:
            record["score"] = i % 5
        if i % 7 == 0:
            record["nickname"] = f"nick{i}"  # open schema: extra attribute
        records.append(record)
    db.load("Test.Users", records)
    db.create_index("Test.Users", "age")
    db.create_index("Test.Users", "score")
    return db


class TestDataverses:
    def test_dataset_requires_dataverse(self):
        db = AsterixDB()
        with pytest.raises(CatalogError):
            db.create_dataset("Nope", "Users", primary_key="id")

    def test_has_dataverse(self, adb):
        assert adb.has_dataverse("Test")
        assert not adb.has_dataverse("Other")


class TestSelectValue:
    def test_select_value_returns_bare_records(self, adb):
        result = adb.execute("SELECT VALUE t FROM Test.Users t LIMIT 2")
        assert isinstance(result.records[0], dict)
        assert result.records[0]["id"] == 0

    def test_select_value_scalar(self, adb):
        result = adb.execute("SELECT VALUE COUNT(*) FROM Test.Users t")
        assert result.records == [300]

    def test_select_value_expression(self, adb):
        result = adb.execute(
            "SELECT VALUE t.age + 1 FROM (SELECT VALUE t FROM Test.Users t) t LIMIT 3"
        )
        assert result.records == [1, 2, 3]

    def test_open_schema_attribute(self, adb):
        result = adb.execute(
            "SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t "
            "WHERE t.nickname = 'nick7' "
        )
        assert len(result) == 1 and result.records[0]["id"] == 7


class TestMissingSemantics:
    def test_is_missing_vs_is_null(self, adb):
        missing = adb.execute(
            "SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM Test.Users t) t "
            "WHERE score IS MISSING"
        ).scalar()
        null = adb.execute(
            "SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM Test.Users t) t "
            "WHERE score IS NULL"
        ).scalar()
        unknown = adb.execute(
            "SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM Test.Users t) t "
            "WHERE score IS UNKNOWN"
        ).scalar()
        assert missing == 30  # attribute absent entirely
        assert null == 0  # never explicitly null in this dataset
        assert unknown == 30

    def test_missing_vanishes_from_constructed_records(self, adb):
        result = adb.execute(
            "SELECT t.id, t.score FROM (SELECT VALUE t FROM Test.Users t) t "
            "WHERE t.id = 0"
        )
        assert result.records == [{"id": 0}]  # MISSING score omitted

    def test_missing_propagates_through_comparison(self, adb):
        # Rows with MISSING score satisfy neither = nor != (propagation).
        result = adb.execute(
            "SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM Test.Users t) t "
            "WHERE t.score = 1 OR t.score != 1"
        )
        assert result.scalar() == 270


class TestAsterixTraits:
    def test_count_uses_pk_index(self, adb):
        result = adb.execute("SELECT VALUE COUNT(*) FROM Test.Users t")
        assert result.stats.heap_fetches == 0
        assert result.stats.full_scans == 0

    def test_absent_not_in_secondary_index(self, adb):
        result = adb.execute(
            "SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM Test.Users t) t "
            "WHERE score IS UNKNOWN"
        )
        assert result.stats.full_scans == 1  # cannot answer from the index

    def test_no_index_only_min_max(self, adb):
        """AsterixDB evaluates MIN/MAX with scans (paper expressions 6/7)."""
        result = adb.execute(
            "SELECT MAX(age) FROM (SELECT age FROM (SELECT VALUE t FROM Test.Users t) t) t"
        )
        assert result.records == [{"max": 29}]
        assert result.stats.heap_fetches > 0

    def test_index_only_join_count(self, adb):
        result = adb.execute(
            "SELECT VALUE COUNT(*) FROM (SELECT l, r FROM Test.Users l "
            "JOIN Test.Users r ON l.age = r.age) t"
        )
        expected = sum(
            sum(1 for j in range(300) if j % 30 == i % 30) for i in range(300)
        )
        assert result.scalar() == expected
        assert result.stats.heap_fetches == 0

    def test_prep_overhead_configurable(self):
        fast = AsterixDB(query_prep_overhead=0.0)
        assert fast.query_prep_overhead == 0.0
        default = AsterixDB()
        assert default.query_prep_overhead > 0

    def test_filter_with_index(self, adb):
        result = adb.execute(
            "SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t WHERE t.age = 3"
        )
        assert all(record["age"] == 3 for record in result.records)
        assert result.stats.full_scans == 0
