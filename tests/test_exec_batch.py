"""ColumnBatch / Vector null-mask semantics.

The three-state validity mask (VALID / NULL / MISSING) is the backbone
of the vectorized engine's SQL-vs-SQL++ absent-value handling; these
tests pin its construction, round-tripping, and structural transforms.
"""

from __future__ import annotations

from repro.exec.batch import (
    MASK_MISSING,
    MASK_NULL,
    MASK_VALID,
    ColumnBatch,
    Vector,
    concat_batches,
)
from repro.storage.keys import SENTINEL_MISSING


def test_vector_from_python_all_valid_has_no_mask():
    vector = Vector.from_python([1, 2, 3])
    assert vector.mask is None
    assert vector.all_valid
    assert vector.to_python() == [1, 2, 3]


def test_vector_from_python_distinguishes_null_and_missing():
    vector = Vector.from_python([1, None, SENTINEL_MISSING, 4])
    assert list(vector.mask) == [MASK_VALID, MASK_NULL, MASK_MISSING, MASK_VALID]
    # Invalid payload slots hold None, never the sentinel.
    assert vector.values == [1, None, None, 4]
    assert vector.to_python() == [1, None, SENTINEL_MISSING, 4]
    assert not vector.all_valid


def test_vector_item_reads_through_mask():
    vector = Vector.from_python([None, SENTINEL_MISSING, 7])
    assert vector.item(0) is None
    assert vector.item(1) is SENTINEL_MISSING
    assert vector.item(2) == 7


def test_vector_broadcast():
    assert Vector.broadcast(5, 3).to_python() == [5, 5, 5]
    assert Vector.broadcast(5, 3).mask is None
    assert Vector.broadcast(None, 2).to_python() == [None, None]
    assert list(Vector.broadcast(None, 2).mask) == [MASK_NULL, MASK_NULL]
    missing = Vector.broadcast(SENTINEL_MISSING, 2)
    assert list(missing.mask) == [MASK_MISSING, MASK_MISSING]


def test_vector_take_gathers_values_and_mask():
    vector = Vector.from_python([10, None, SENTINEL_MISSING, 40])
    taken = vector.take([3, 1, 0])
    assert taken.to_python() == [40, None, 10]
    assert list(taken.mask) == [MASK_VALID, MASK_NULL, MASK_VALID]
    # A maskless vector stays maskless after take.
    assert Vector.from_python([1, 2]).take([1]).mask is None


def test_from_records_absent_vs_null():
    batch = ColumnBatch.from_records(
        [{"a": 1, "b": 2}, {"a": None}, {"a": 3, "b": 4}], alias="t"
    )
    assert batch.length == 3
    assert batch.columns["a"].to_python() == [1, None, 3]
    assert list(batch.columns["a"].mask) == [MASK_VALID, MASK_NULL, MASK_VALID]
    # 'b' is absent (not null) in the middle record.
    assert list(batch.columns["b"].mask) == [MASK_VALID, MASK_MISSING, MASK_VALID]
    assert batch.columns["b"].item(1) is SENTINEL_MISSING


def test_from_records_column_hint_restricts_transpose():
    batch = ColumnBatch.from_records(
        [{"a": 1, "b": 2}, {"a": 3, "b": 4}], alias="t", columns=("b",)
    )
    assert set(batch.columns) == {"b"}
    assert batch.columns["b"].mask is None


def test_from_records_union_in_first_seen_order():
    batch = ColumnBatch.from_records([{"b": 1}, {"a": 2, "b": 3}])
    assert list(batch.columns) == ["b", "a"]


def test_row_record_drops_missing_keeps_null():
    batch = ColumnBatch.from_records([{"a": 1}, {"a": None, "b": 5}], alias="t")
    assert batch.row_record(0) == {"a": 1}
    assert batch.row_record(1) == {"a": None, "b": 5}
    assert list(batch.records()) == [{"a": 1}, {"a": None, "b": 5}]


def test_rename_and_restrict_share_columns():
    batch = ColumnBatch.from_records([{"a": 1, "b": 2}], alias="t")
    renamed = batch.rename("u")
    assert renamed.alias == "u"
    assert renamed.columns is batch.columns
    restricted = batch.restrict(["a", "zzz"])
    assert set(restricted.columns) == {"a"}
    assert restricted.columns["a"] is batch.columns["a"]


def test_batch_take_reorders_rows():
    batch = ColumnBatch.from_records([{"a": 1}, {"a": None}, {"a": 3}], alias="t")
    taken = batch.take([2, 0])
    assert taken.length == 2
    assert list(taken.records()) == [{"a": 3}, {"a": 1}]


def test_concat_batches_fills_absent_columns_with_missing():
    left = ColumnBatch.from_records([{"a": 1, "b": 2}], alias="t")
    right = ColumnBatch.from_records([{"a": 3}], alias="t")
    merged = concat_batches([left, right])
    assert merged.length == 2
    assert merged.alias == "t"
    assert list(merged.columns["b"].mask) == [MASK_VALID, MASK_MISSING]
    assert list(merged.records()) == [{"a": 1, "b": 2}, {"a": 3}]


def test_concat_batches_merges_masked_and_unmasked_runs():
    first = ColumnBatch.from_records([{"a": 1}, {"a": 2}], alias="t")
    second = ColumnBatch.from_records([{"a": None}, {"a": 4}], alias="t")
    merged = concat_batches([first, second])
    assert merged.columns["a"].to_python() == [1, 2, None, 4]
    assert list(merged.columns["a"].mask) == [
        MASK_VALID, MASK_VALID, MASK_NULL, MASK_VALID,
    ]
    assert concat_batches([]).length == 0
