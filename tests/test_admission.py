"""Adaptive admission control tests: AIMD limits, bounded queueing, shedding.

Controller units run on fake clocks where possible; the queueing tests
use real (short) waits because admission blocks on a condition variable.
Connector and cluster integration asserts the observable contract:
shed queries are logged with outcome ``'shed'`` and zero attempts, a
streamed query holds its slot until the drain finishes, and the knob is
off by default (seed-identical).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import PostgresConnector
from repro.cluster import GreenplumCluster
from repro.cluster.base import admission_gate
from repro.errors import OverloadError, QueryTimeoutError
from repro.obs import metrics
from repro.obs.trace import get_tracer
from repro.resilience import FaultInjector
from repro.resilience.admission import (
    ENV_ADMISSION,
    AdmissionController,
    resolve_admission,
)
from repro.resilience.deadline import Deadline
from repro.sqlengine import SQLDatabase
from repro.wisconsin import loaders, wisconsin_records

QUERY = "SELECT COUNT(*) FROM t x"

#: Operator profiling under the CI trace matrix (``REPRO_TRACE=1``)
#: materializes streaming sends — the engines' documented fallback — so
#: tests asserting *real* streaming have nothing to observe there.
needs_real_streaming = pytest.mark.skipif(
    get_tracer() is not None,
    reason="tracing profiles every operator, which materializes streaming sends",
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def single_node_connector(injector=None, **kwargs) -> PostgresConnector:
    db = SQLDatabase()
    db.create_table("t")
    db.insert("t", [{"a": 1}, {"a": 2}])
    return PostgresConnector(db, fault_injector=injector, **kwargs)


def tiny_controller(**kwargs) -> AdmissionController:
    kwargs.setdefault("initial_limit", 1)
    kwargs.setdefault("min_limit", 1)
    kwargs.setdefault("max_limit", 1)
    kwargs.setdefault("max_queue", 0)
    return AdmissionController(**kwargs)


# ----------------------------------------------------------------------
# Controller units
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_fast_path_admits_without_waiting(self):
        ctrl = AdmissionController()
        ticket = ctrl.acquire()
        assert ticket.queue_wait_seconds == 0.0
        assert ctrl.inflight == 1
        ticket.release(0.01)
        assert ctrl.inflight == 0
        assert ctrl.stats()["admitted"] == 1

    def test_release_is_idempotent(self):
        ctrl = AdmissionController()
        ticket = ctrl.acquire()
        ticket.release(0.01)
        ticket.release(0.01)
        assert ctrl.inflight == 0
        assert ctrl.ewma_latency == pytest.approx(0.01)

    def test_additive_increase_on_healthy_completions(self):
        ctrl = AdmissionController(initial_limit=2, max_limit=8, max_queue=0)
        for _ in range(4):
            ctrl.acquire().release(0.1)
        # First sample only seeds the EWMA; the next three healthy
        # completions grow the limit by ~1/limit each: 2.0 -> 3.245.
        assert ctrl.limit == 3
        assert ctrl.ewma_latency == pytest.approx(0.1)

    def test_multiplicative_decrease_on_degraded_latency(self):
        ctrl = AdmissionController(initial_limit=8, max_limit=8, max_queue=0)
        ctrl.acquire().release(0.1)  # baseline
        ctrl.acquire().release(1.0)  # 10x slower than the EWMA: degrade
        assert ctrl.limit == 5  # 8 * 0.7 = 5.6, floored
        # The slow sample still folds into the baseline (slowly).
        assert ctrl.ewma_latency == pytest.approx(0.2 * 1.0 + 0.8 * 0.1)

    def test_limit_never_falls_below_min(self):
        ctrl = AdmissionController(
            initial_limit=4, min_limit=4, max_limit=8, max_queue=0
        )
        ctrl.acquire().release(0.1)  # baseline
        ctrl.acquire().release(10.0)  # degrade wants 4 * 0.7 = 2.8...
        assert ctrl.limit == 4  # ...but the floor holds

    def test_failed_completion_feeds_nothing_back(self):
        ctrl = AdmissionController(initial_limit=4, max_limit=8, max_queue=0)
        ctrl.acquire().release(0.1)
        before_limit, before_ewma = ctrl.limit, ctrl.ewma_latency
        ctrl.acquire().release(60.0, ok=False)  # an error, not a latency sample
        assert ctrl.limit == before_limit
        assert ctrl.ewma_latency == before_ewma
        assert ctrl.inflight == 0

    def test_full_queue_sheds_with_retry_after(self):
        ctrl = tiny_controller(backend="pg")
        hold = ctrl.acquire()
        before = metrics.counter_value("queries_shed_total", reason="queue_full")
        with pytest.raises(OverloadError, match="queue is full") as excinfo:
            ctrl.acquire()
        assert excinfo.value.retry_after >= 0.0
        assert ctrl.stats()["shed"] == 1
        assert metrics.counter_value(
            "queries_shed_total", reason="queue_full"
        ) == before + 1
        hold.release(0.01)

    def test_hopeless_deadline_is_shed_up_front(self):
        clock = FakeClock()
        ctrl = tiny_controller(max_queue=4, clock=clock)
        ctrl.acquire().release(1.0)  # EWMA baseline: ~1s per wave
        hold = ctrl.acquire()
        before = metrics.counter_value("queries_shed_total", reason="deadline")
        deadline = Deadline(0.01, clock=clock)
        with pytest.raises(OverloadError, match="deadline budget") as excinfo:
            ctrl.acquire(deadline)
        assert excinfo.value.retry_after == pytest.approx(1.0)
        assert metrics.counter_value(
            "queries_shed_total", reason="deadline"
        ) == before + 1
        hold.release(1.0)

    def test_queued_caller_proceeds_when_a_slot_frees(self):
        ctrl = tiny_controller(max_queue=4)
        hold = ctrl.acquire()
        admitted = []

        def waiter():
            ticket = ctrl.acquire()
            admitted.append(ticket.queue_wait_seconds)
            ticket.release(0.01)

        thread = threading.Thread(target=waiter)
        thread.start()
        for _ in range(200):
            if ctrl.queue_depth == 1:
                break
            time.sleep(0.005)
        assert ctrl.queue_depth == 1
        hold.release(0.01)
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert admitted and admitted[0] >= 0.0
        assert ctrl.inflight == 0
        assert ctrl.queue_depth == 0

    def test_deadline_expiry_while_queued_times_out(self):
        ctrl = tiny_controller(max_queue=4)
        hold = ctrl.acquire()  # never released while we wait
        with pytest.raises(QueryTimeoutError, match="admission queue"):
            ctrl.acquire(Deadline(0.05))
        assert ctrl.queue_depth == 0  # the waiter cleaned up after itself
        hold.release(0.01)

    def test_gauges_track_controller_state(self):
        ctrl = tiny_controller(backend="pg-gauges", max_queue=4)
        ticket = ctrl.acquire()
        assert metrics.gauge_value("inflight", backend="pg-gauges") == 1
        ticket.release(0.01)
        assert metrics.gauge_value("inflight", backend="pg-gauges") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(min_limit=0)
        with pytest.raises(ValueError):
            AdmissionController(initial_limit=9, max_limit=8)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(degrade_multiplier=1.0)
        with pytest.raises(ValueError):
            AdmissionController(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            AdmissionController(decrease_factor=1.0)


class TestResolveAdmission:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_ADMISSION, raising=False)
        assert resolve_admission(None) is None

    def test_env_opt_in_and_spellings(self, monkeypatch):
        monkeypatch.setenv(ENV_ADMISSION, "1")
        assert resolve_admission(None) is not None
        for off in ("0", "false", "off", ""):
            monkeypatch.setenv(ENV_ADMISSION, off)
            assert resolve_admission(None) is None

    def test_explicit_false_beats_the_env(self, monkeypatch):
        monkeypatch.setenv(ENV_ADMISSION, "1")
        assert resolve_admission(False) is None

    def test_true_builds_a_fresh_controller(self, monkeypatch):
        monkeypatch.delenv(ENV_ADMISSION, raising=False)
        ctrl = resolve_admission(True, backend="pg")
        assert isinstance(ctrl, AdmissionController)
        assert ctrl.backend == "pg"

    def test_shared_controller_passes_through(self):
        shared = AdmissionController()
        assert resolve_admission(shared, backend="pg") is shared
        assert shared.backend == "pg"  # backfilled for metrics labels
        named = AdmissionController(backend="cluster-wide")
        resolve_admission(named, backend="pg")
        assert named.backend == "cluster-wide"  # never overwritten


# ----------------------------------------------------------------------
# Connector integration
# ----------------------------------------------------------------------
class TestConnectorAdmission:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_ADMISSION, raising=False)
        assert single_node_connector().admission is None

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv(ENV_ADMISSION, "1")
        connector = single_node_connector()
        assert connector.admission is not None
        assert connector.admission.backend == "PostgresConnector"

    def test_shed_send_is_logged_and_counted(self):
        ctrl = tiny_controller()
        connector = single_node_connector(admission=ctrl)
        hold = ctrl.acquire()
        before = metrics.counter_value(
            "queries_shed_total", backend="PostgresConnector"
        )
        with pytest.raises(OverloadError):
            connector.send(QUERY, "t")
        record = connector.send_log[-1]
        assert record.outcome == "shed"
        assert record.attempts == 0  # never reached the backend
        assert metrics.counter_value(
            "queries_shed_total", backend="PostgresConnector"
        ) == before + 1
        hold.release(0.01)
        result = connector.send(QUERY, "t")  # slot freed: admitted again
        assert result.scalar() == 2
        assert connector.send_log[-1].outcome == "ok"
        assert ctrl.inflight == 0

    def test_admitted_send_records_queue_wait(self):
        connector = single_node_connector(admission=True)
        result = connector.send(QUERY, "t")
        assert result.scalar() == 2
        record = connector.send_log[-1]
        assert record.outcome == "ok"
        assert record.queue_wait_ms >= 0.0
        assert connector.admission.stats()["admitted"] == 1
        assert connector.admission.inflight == 0

    @needs_real_streaming
    def test_streaming_send_holds_its_slot_until_drained(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEADLINE", raising=False)
        ctrl = AdmissionController(initial_limit=2, max_limit=2, max_queue=0)
        # An explicit empty injector blocks the CI chaos env's global
        # injector + default retry policy, which would force this
        # streaming send to materialize (stream + retry).
        connector = single_node_connector(FaultInjector(), admission=ctrl)
        result = connector.send("SELECT * FROM t x", "t", stream=True)
        assert getattr(result, "streaming", False)
        assert ctrl.inflight == 1  # still admitted while undrained
        rows = list(result.iter_records())
        assert len(rows) == 2
        assert ctrl.inflight == 0  # drain returned the slot

    @needs_real_streaming
    def test_closed_stream_returns_its_slot(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEADLINE", raising=False)
        ctrl = AdmissionController(initial_limit=2, max_limit=2, max_queue=0)
        connector = single_node_connector(FaultInjector(), admission=ctrl)
        result = connector.send("SELECT * FROM t x", "t", stream=True)
        records = result.iter_records()
        next(records)
        assert ctrl.inflight == 1
        result.close()  # truncated drain: slot back, counted as not-ok
        assert ctrl.inflight == 0


# ----------------------------------------------------------------------
# Cluster (coordinator) integration
# ----------------------------------------------------------------------
class TestClusterAdmission:
    NUM_RECORDS = 40
    COUNT = "SELECT COUNT(*) FROM Bench.data"

    def build_cluster(self, **kwargs) -> GreenplumCluster:
        cluster = GreenplumCluster(
            2,
            fault_injector=FaultInjector(),
            replication_factor=1,
            **kwargs,
        )
        cluster.create_table("Bench.data", primary_key=loaders.PRIMARY_KEY)
        cluster.insert(
            "Bench.data", wisconsin_records(self.NUM_RECORDS), shard_key="unique1"
        )
        return cluster

    def test_gate_is_a_no_op_without_a_controller(self):
        with admission_gate(None):
            pass  # seed path: nothing acquired, nothing to release

    def test_gate_releases_on_error(self):
        ctrl = tiny_controller()
        with pytest.raises(RuntimeError, match="boom"):
            with admission_gate(ctrl):
                assert ctrl.inflight == 1
                raise RuntimeError("boom")
        assert ctrl.inflight == 0

    def test_cluster_execute_passes_through_the_gate(self):
        cluster = self.build_cluster(admission=True)
        assert cluster.admission is not None
        assert cluster.admission.backend == cluster.name
        result = cluster.execute(self.COUNT)
        assert result.scalar() == self.NUM_RECORDS
        assert cluster.admission.stats()["admitted"] == 1
        assert cluster.admission.inflight == 0

    def test_saturated_shared_controller_sheds_at_the_coordinator(self):
        shared = tiny_controller(backend="greenplum-fleet")
        cluster = self.build_cluster(admission=shared)
        hold = shared.acquire()
        with pytest.raises(OverloadError):
            cluster.execute(self.COUNT)
        hold.release(0.01)
        assert cluster.execute(self.COUNT).scalar() == self.NUM_RECORDS
        assert shared.inflight == 0

    def test_cluster_admission_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_ADMISSION, raising=False)
        cluster = GreenplumCluster(
            2, fault_injector=FaultInjector(), replication_factor=1
        )
        assert cluster.admission is None
