"""EXPLAIN ANALYZE correctness: timings, exact row counts, identical results.

Analyze mode must be a pure observer — every operator reports a
non-negative wall time and the exact rows it consumed/produced, and the
records returned are byte-identical to a normal (unprofiled) execution.
"""

from __future__ import annotations

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.obs import get_tracer
from repro.sqlengine import SQLDatabase
from repro.wisconsin import loaders

BACKENDS = ("asterixdb", "postgres", "mongodb", "neo4j")

CONNECTOR_CLASSES = {
    "asterixdb": AsterixDBConnector,
    "postgres": PostgresConnector,
    "mongodb": MongoDBConnector,
    "neo4j": Neo4jConnector,
}


@pytest.fixture(scope="module")
def sql_engines(wisconsin):
    """Private row and vector SQL engines (don't mutate session fixtures).

    Loaded without indexes so plans are scan-based and therefore run on
    the vector path when ``exec_engine='vector'`` (index scans fall back
    to the row engine).
    """
    engines = {}
    for exec_engine in ("row", "vector"):
        db = SQLDatabase(name=f"pg-{exec_engine}", exec_engine=exec_engine)
        loaders.load_postgres(db, "Bench", "data", wisconsin, indexes=False)
        engines[exec_engine] = db
    return engines


def frame_for(backend: str, request) -> PolyFrame:
    db = request.getfixturevalue(backend)
    return PolyFrame("Bench", "data", CONNECTOR_CLASSES[backend](db))


def assert_profile_invariants(profile) -> None:
    """Every node: time >= 0, counts >= 0, rows_in == sum(children out)."""
    assert profile is not None
    for node in profile.walk():
        assert node.time_ns >= 0
        assert node.rows_out >= 0
        if node.children:
            assert node.rows_in == sum(c.rows_out for c in node.children)
        else:
            assert node.rows_in is None


@pytest.mark.parametrize("exec_engine", ("row", "vector"))
def test_sql_profile_rows_exact_on_both_engines(sql_engines, exec_engine):
    df = PolyFrame("Bench", "data", PostgresConnector(sql_engines[exec_engine]))
    selected = df[df["ten"] < 5][["unique1", "ten"]]
    profiled = selected.profile()
    assert profiled.engine == exec_engine
    assert_profile_invariants(profiled.profile)
    # The root operator's output is exactly the rows the action returned.
    assert profiled.profile.rows_out == len(profiled.frame)
    # The filter discarded exactly the rows with ten >= 5 (half of 600).
    assert profiled.profile.rows_out == 300


def test_vector_profile_counts_batches(sql_engines):
    df = PolyFrame("Bench", "data", PostgresConnector(sql_engines["vector"]))
    profiled = df[df["ten"] < 5].profile()
    batched = [n for n in profiled.profile.walk() if n.batches]
    assert batched, "vector execution produced no batch-counting operators"
    for node in batched:
        assert node.batches > 0
    assert "batches=" in profiled.report()


@pytest.mark.parametrize("backend", BACKENDS)
def test_profile_every_backend(backend, request):
    """explain(analyze=True) works on all four backends with real counts."""
    df = frame_for(backend, request)
    selected = df[df["ten"] < 5]
    profiled = selected.profile()
    assert_profile_invariants(profiled.profile)
    assert profiled.profile.rows_out == len(profiled.frame) == 300
    report = selected.explain(analyze=True)
    assert "actual time=" in report
    assert "rows out=300" in report


@pytest.mark.parametrize("backend", BACKENDS)
def test_profiled_results_identical_to_collect(backend, request):
    """Analyze mode never changes answers (records byte-identical)."""
    df = frame_for(backend, request)
    selected = df[df["ten"] < 5][["unique1", "ten"]]
    assert selected.profile().frame.to_records() == selected.collect().to_records()


@pytest.mark.parametrize("exec_engine", ("row", "vector"))
def test_engine_analyze_results_identical(sql_engines, exec_engine):
    db = sql_engines[exec_engine]
    query = 'SELECT unique1, ten FROM "Bench"."data" WHERE ten < 5'
    plain = db.execute(query)
    analyzed = db.execute(query, analyze=True)
    assert analyzed.records == plain.records
    if get_tracer() is None:
        # Profiles only appear unrequested when tracing is on (REPRO_TRACE=1).
        assert plain.op_profile is None
    assert analyzed.op_profile is not None


def test_operator_names_in_report(sql_engines):
    df = PolyFrame("Bench", "data", PostgresConnector(sql_engines["row"]))
    report = df[df["ten"] < 5][["unique1", "ten"]].explain(analyze=True)
    assert "Project" in report
    assert "Scan" in report  # IndexScan or SeqScan depending on indexes
    assert report.splitlines()[0].startswith("== operator profile (PostgresConnector")


def test_docstore_and_graph_operator_names(request):
    mongo = frame_for("mongodb", request)
    report = mongo[mongo["ten"] < 5].explain(analyze=True)
    assert "Scan" in report and "$match" in report
    graph = frame_for("neo4j", request)
    report = graph[graph["ten"] < 5].explain(analyze=True)
    assert "Match" in report
