"""Cluster simulation tests: sharding, merging, and engine parity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AsterixDBConnector, MongoDBConnector, PolyFrame, PostgresConnector
from repro.cluster import AsterixDBCluster, GreenplumCluster, MongoDBCluster
from repro.cluster.base import round_robin_shards, shard_records
from repro.cluster.merge import merge_records, spec_for_pipeline, spec_for_select
from repro.errors import UnsupportedOperationError
from repro.sqlengine.parser import parse
from repro.wisconsin import wisconsin_records


class TestSharding:
    def test_round_robin_is_uniform(self):
        shards = round_robin_shards([{"n": i} for i in range(10)], 3)
        assert [len(s) for s in shards] == [4, 3, 3]

    def test_hash_sharding_colocates_keys(self):
        records = [{"k": i % 4, "n": i} for i in range(40)]
        shards = shard_records(records, 3, shard_key="k")
        for shard in shards:
            keys = {record["k"] for record in shard}
            for other in shards:
                if other is shard:
                    continue
                assert keys.isdisjoint({record["k"] for record in other})

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            AsterixDBCluster(0)
        with pytest.raises(ValueError):
            GreenplumCluster(0)
        with pytest.raises(ValueError):
            MongoDBCluster(0)


class TestMergeSpecs:
    def test_scalar_count_spec(self):
        spec = spec_for_select(parse("SELECT COUNT(*) FROM (SELECT * FROM t) x", "sql"))
        assert spec.kind == "scalar_agg"
        merged = merge_records(spec, [[{"count": 3}], [{"count": 4}]])
        assert merged == [{"count": 7}]

    def test_select_value_count(self):
        spec = spec_for_select(parse("SELECT VALUE COUNT(*) FROM t x", "sqlpp"))
        assert spec.select_value
        assert merge_records(spec, [[5], [7], [0]]) == [12]

    def test_min_max_specs(self):
        spec = spec_for_select(parse("SELECT MAX(a), MIN(a) FROM t x", "sql"))
        merged = merge_records(spec, [[{"max": 9, "min": 2}], [{"max": 4, "min": 0}]])
        assert merged == [{"max": 9, "min": 0}]

    def test_avg_decomposes_into_partials(self):
        spec = spec_for_select(parse("SELECT AVG(a) FROM t x", "sql"))
        assert spec.needs_rewrite
        partial = spec.partial_outputs[0]
        merged = merge_records(
            spec,
            [
                [{partial.sum_col: 6, partial.count_col: 2}],
                [{partial.sum_col: 3, partial.count_col: 1}],
            ],
        )
        assert merged == [{"avg": 3.0}]

    def test_avg_merge_ignores_empty_shards(self):
        spec = spec_for_select(parse("SELECT AVG(a) FROM t x", "sql"))
        partial = spec.partial_outputs[0]
        merged = merge_records(
            spec,
            [
                [{partial.sum_col: 10, partial.count_col: 4}],
                [{partial.sum_col: None, partial.count_col: 0}],
            ],
        )
        assert merged == [{"avg": 2.5}]

    def test_sum_merge_all_null_is_null(self):
        # SQL semantics: SUM over zero qualifying rows is NULL, not 0 —
        # a cluster where every shard reports NULL must not invent a 0.
        spec = spec_for_select(parse("SELECT SUM(a) FROM t x", "sql"))
        merged = merge_records(spec, [[{"sum": None}], [{"sum": None}]])
        assert merged == [{"sum": None}]
        merged = merge_records(spec, [[{"sum": None}], [{"sum": 7}]])
        assert merged == [{"sum": 7}]

    def test_group_merge(self):
        spec = spec_for_select(
            parse("SELECT k, COUNT(k) AS c FROM t x GROUP BY k", "sql")
        )
        assert spec.kind == "group_agg"
        merged = merge_records(
            spec,
            [[{"k": 1, "c": 2}, {"k": 2, "c": 1}], [{"k": 1, "c": 3}]],
        )
        by_key = {record["k"]: record["c"] for record in merged}
        assert by_key == {1: 5, 2: 1}

    def test_ordered_limit_merge(self):
        spec = spec_for_select(
            parse("SELECT * FROM t x ORDER BY v DESC LIMIT 3", "sql")
        )
        merged = merge_records(
            spec,
            [[{"v": 9}, {"v": 5}], [{"v": 8}, {"v": 7}]],
        )
        assert [record["v"] for record in merged] == [9, 8, 7]

    def test_concat_with_limit(self):
        spec = spec_for_select(parse("SELECT * FROM t x LIMIT 2", "sql"))
        merged = merge_records(spec, [[{"v": 1}], [{"v": 2}], [{"v": 3}]])
        assert len(merged) == 2

    def test_pipeline_count_spec(self):
        spec = spec_for_pipeline([{"$match": {}}, {"$count": "count"}])
        assert merge_records(spec, [[{"count": 2}], []]) == [{"count": 2}]

    def test_pipeline_group_spec(self):
        spec = spec_for_pipeline([
            {"$group": {"_id": {"k": "$k"}, "max": {"$max": "$v"}}},
        ])
        merged = merge_records(
            spec, [[{"k": 1, "max": 5}], [{"k": 1, "max": 9}, {"k": 2, "max": 1}]]
        )
        by_key = {record["k"]: record["max"] for record in merged}
        assert by_key == {1: 9, 2: 1}

    def test_pipeline_sort_limit(self):
        spec = spec_for_pipeline([
            {"$match": {}}, {"$sort": {"v": -1}}, {"$limit": 2},
        ])
        merged = merge_records(spec, [[{"v": 3}, {"v": 1}], [{"v": 5}]])
        assert [record["v"] for record in merged] == [5, 3]

    def test_pipeline_lookup_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            spec_for_pipeline([{"$lookup": {"from": "x", "as": "y"}}])

    def test_pipeline_avg_decomposes_into_partials(self):
        spec = spec_for_pipeline([{"$group": {"_id": {}, "a": {"$avg": "$v"}}}])
        assert spec.needs_rewrite
        partial = spec.partial_outputs[0]
        merged = merge_records(
            spec,
            [
                [{partial.sum_col: 8, partial.count_col: 2}],
                [{partial.sum_col: 1, partial.count_col: 1}],
            ],
        )
        assert merged == [{"a": 3.0}]


@pytest.fixture(scope="module")
def loaded_clusters():
    records = wisconsin_records(400)
    adb = AsterixDBCluster(3, query_prep_overhead=0.0)
    adb.create_dataverse("B")
    adb.create_dataset("B", "data", primary_key="unique2")
    adb.load("B.data", records, shard_key="unique1")
    adb.create_index("B.data", "unique1")
    adb.create_index("B.data", "ten")

    gp = GreenplumCluster(3, query_prep_overhead=0.0)
    gp.create_table("B.data", primary_key="unique2")
    gp.insert("B.data", records, shard_key="unique1")
    gp.create_index("B.data", "unique1")

    mg = MongoDBCluster(3, query_prep_overhead=0.0)
    mg.create_collection("data")
    mg.insert_many("data", records, shard_key="unique1")
    mg.create_index("data", "unique1")
    return records, adb, gp, mg


class TestClusterParity:
    """Sharded answers must equal single-node answers."""

    def test_counts(self, loaded_clusters):
        records, adb, gp, mg = loaded_clusters
        for connector in (
            AsterixDBConnector(adb),
            PostgresConnector(gp),
            MongoDBConnector(mg),
        ):
            af = PolyFrame("B", "data", connector)
            assert len(af) == 400

    def test_filtered_count(self, loaded_clusters):
        records, adb, gp, mg = loaded_clusters
        expected = sum(1 for r in records if r["ten"] == 3)
        for connector in (
            AsterixDBConnector(adb),
            PostgresConnector(gp),
            MongoDBConnector(mg),
        ):
            af = PolyFrame("B", "data", connector)
            assert len(af[af["ten"] == 3]) == expected

    def test_max_min(self, loaded_clusters):
        records, adb, gp, mg = loaded_clusters
        for connector in (
            AsterixDBConnector(adb),
            PostgresConnector(gp),
            MongoDBConnector(mg),
        ):
            af = PolyFrame("B", "data", connector)
            assert af["unique1"].max() == 399
            assert af["unique1"].min() == 0

    def test_grouped_counts(self, loaded_clusters):
        records, adb, gp, mg = loaded_clusters
        for connector in (
            AsterixDBConnector(adb),
            PostgresConnector(gp),
            MongoDBConnector(mg),
        ):
            af = PolyFrame("B", "data", connector)
            result = af.groupby("ten")["four"].agg("max").collect()
            assert len(result) == 10

    def test_global_topk(self, loaded_clusters):
        records, adb, gp, mg = loaded_clusters
        for connector in (
            AsterixDBConnector(adb),
            PostgresConnector(gp),
            MongoDBConnector(mg),
        ):
            af = PolyFrame("B", "data", connector)
            top = af.sort_values("unique1", ascending=False).head(5)
            assert [r["unique1"] for r in top.to_records()] == [399, 398, 397, 396, 395]

    def test_colocated_join(self, loaded_clusters):
        records, adb, gp, mg = loaded_clusters
        af = PolyFrame("B", "data", AsterixDBConnector(adb))
        assert len(af.merge(af, left_on="unique1", right_on="unique1")) == 400
        af = PolyFrame("B", "data", PostgresConnector(gp))
        assert len(af.merge(af, left_on="unique1", right_on="unique1")) == 400

    def test_mongo_sharded_join_unsupported(self, loaded_clusters):
        records, adb, gp, mg = loaded_clusters
        af = PolyFrame("B", "data", MongoDBConnector(mg))
        with pytest.raises(UnsupportedOperationError):
            len(af.merge(af, left_on="unique1", right_on="unique1"))

    def test_distributed_avg_and_std_match_single_node(self, loaded_clusters):
        # AVG/STDDEV now ship partial states (sum, count, sum of squares)
        # from the shards; the finalized answers must equal a single
        # node's bit-for-bit on integer columns (exact integer partials).
        records, adb, gp, mg = loaded_clusters
        from repro.exec.kernels import finalize_avg, finalize_std

        values = [r["four"] for r in records]
        expected_avg = finalize_avg(sum(values), len(values))
        expected_std = finalize_std(
            len(values), sum(values), sum(v * v for v in values)
        )
        for connector in (
            AsterixDBConnector(adb),
            PostgresConnector(gp),
            MongoDBConnector(mg),
        ):
            af = PolyFrame("B", "data", connector)
            assert af["four"].mean() == expected_avg
            assert af["four"].std() == expected_std

    def test_simulated_elapsed_is_max_plus_merge(self, loaded_clusters):
        records, adb, gp, mg = loaded_clusters
        result = adb.execute("SELECT VALUE COUNT(*) FROM B.data t")
        per_node = [node.execute("SELECT VALUE COUNT(*) FROM B.data t") for node in adb.nodes]
        assert result.elapsed_seconds < sum(r.elapsed_seconds for r in per_node) + 1.0
        assert result.records == [400]

    def test_greenplum_lacks_modern_plans(self, loaded_clusters):
        records, adb, gp, mg = loaded_clusters
        result = gp.execute('SELECT MAX("unique1") FROM (SELECT * FROM B.data) t')
        assert result.records[0]["max"] == 399
        assert result.stats.heap_fetches > 0  # no index-only scan (PG 9.5)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(0, 99), min_size=1, max_size=60),
    st.integers(1, 4),
)
def test_property_sharded_count_equals_local(values, nodes):
    cluster = GreenplumCluster(nodes, query_prep_overhead=0.0)
    cluster.create_table("t")
    cluster.insert("t", [{"v": value} for value in values])
    got = cluster.execute("SELECT COUNT(*) FROM (SELECT * FROM t) x").scalar()
    assert got == len(values)
