"""Error hierarchy and assorted smaller-surface tests."""

from __future__ import annotations

import pytest

from repro import errors
from repro.eager import EagerFrame, EagerSeries, frame_from_records
from repro.sqlengine.logical import Scan
from repro.storage.keys import SENTINEL_MISSING


class TestErrorHierarchy:
    def test_all_inherit_repro_error(self):
        for name in (
            "StorageError", "CatalogError", "DuplicateKeyError", "QueryError",
            "LexerError", "ParseError", "PlanningError", "ExecutionError",
            "UnsupportedOperationError", "RewriteError", "ConnectorError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_memory_budget_is_both(self):
        assert issubclass(errors.MemoryBudgetExceeded, MemoryError)
        assert issubclass(errors.MemoryBudgetExceeded, errors.ReproError)

    def test_catalog_error_is_storage_error(self):
        assert issubclass(errors.CatalogError, errors.StorageError)

    def test_lexer_error_carries_position(self):
        error = errors.LexerError("bad", position=7)
        assert error.position == 7


class TestLogicalPlanProtocol:
    def test_tree_string_indents(self):
        from repro.sqlengine.logical import Filter
        from repro.sqlengine.ast_nodes import BinaryOp, ColumnRef, Literal

        plan = Filter(Scan("t", "x"), BinaryOp("=", ColumnRef("a"), Literal(1)))
        lines = plan.tree_string().splitlines()
        assert lines[0].startswith("Filter")
        assert lines[1].startswith("  Scan")


class TestEagerEdgeCases:
    def test_empty_frame(self):
        frame = frame_from_records([])
        assert len(frame) == 0
        assert frame.columns == []
        assert frame.to_string() == "(empty frame)"

    def test_frame_repr(self):
        frame = EagerFrame({"a": [1]})
        assert "shape=(1, 1)" in repr(frame)

    def test_series_repr_truncates(self):
        series = EagerSeries(list(range(100)), name="big")
        assert "..." in repr(series)

    def test_take_reorders(self):
        frame = frame_from_records([{"v": v} for v in (10, 20, 30)])
        assert frame.take([2, 0]).column_values("v") == [30, 10]

    def test_row_and_iterrows(self):
        frame = frame_from_records([{"v": 1}, {"v": 2}])
        assert frame.row(1) == {"v": 2}
        assert [row for _i, row in frame.iterrows()] == [{"v": 1}, {"v": 2}]

    def test_setitem_on_empty_frame(self):
        frame = EagerFrame({})
        frame["a"] = [1, 2, 3]
        assert len(frame) == 3

    def test_setitem_length_mismatch(self):
        frame = EagerFrame({"a": [1, 2]})
        with pytest.raises(ValueError):
            frame["b"] = [1]

    def test_bad_mask_length(self):
        frame = EagerFrame({"a": [1, 2]})
        with pytest.raises(ValueError):
            frame[EagerSeries([True])]

    def test_contains(self):
        frame = EagerFrame({"a": [1]})
        assert "a" in frame and "b" not in frame


class TestMissingSentinel:
    def test_sentinel_survives_round_trips(self):
        # Engines must never leak the sentinel into user-facing records.
        from repro.sqlpp import AsterixDB

        db = AsterixDB(query_prep_overhead=0.0)
        db.create_dataverse("M")
        db.create_dataset("M", "d", primary_key="id")
        db.load("M.d", [{"id": 1}, {"id": 2, "opt": 5}])
        result = db.execute("SELECT t.id, t.opt FROM (SELECT VALUE t FROM M.d t) t")
        for record in result.records:
            assert SENTINEL_MISSING not in record.values()
        # Missing attribute simply vanishes from the constructed record.
        assert result.records[0] == {"id": 1}
