"""Unit tests for the logical-plan layer.

Covers the plan optimizer's backend-agnostic rewrites, the compiled-query
cache (and its surfacing through QueryStats), true retargeting, the
three-stage ``explain(verbose=True)``, the raw-query escape hatch, and
the ``describe()`` numeric-inference fix.
"""

from __future__ import annotations

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.core.plan import (
    BinaryExpr,
    ColumnExpr,
    Filter,
    Limit,
    LiteralExpr,
    LogicalExpr,
    Project,
    RawQuery,
    Scan,
    Sort,
    optimize,
    plan_is_retargetable,
)
from repro.errors import ConnectorError, RewriteError
from repro.sqlengine import SQLDatabase


def _pred(name: str, value: int) -> BinaryExpr:
    return BinaryExpr("gt", ColumnExpr(name), LiteralExpr(value))


SCAN = Scan("Bench", "data")


# ----------------------------------------------------------------------
# Optimizer rewrites (pure plan → plan)
# ----------------------------------------------------------------------
def test_level0_is_identity():
    plan = Filter(Filter(SCAN, _pred("a", 1)), _pred("b", 2))
    assert optimize(plan, 0) is plan


def test_adjacent_filters_fuse_through_and_rule():
    plan = Filter(Filter(SCAN, _pred("a", 1)), _pred("b", 2))
    fused = optimize(plan, 1)
    assert isinstance(fused, Filter)
    assert isinstance(fused.input, Scan)
    assert isinstance(fused.predicate, LogicalExpr)
    assert fused.predicate.rule == "and"
    # Inner (first-applied) predicate becomes the left operand — the same
    # statement a user-level ``mask1 & mask2`` composes.
    assert fused.predicate.left.fingerprint() == _pred("a", 1).fingerprint()


def test_three_filters_fuse_to_one():
    plan = Filter(
        Filter(Filter(SCAN, _pred("a", 1)), _pred("b", 2)), _pred("c", 3)
    )
    fused = optimize(plan, 1)
    assert isinstance(fused, Filter)
    assert isinstance(fused.input, Scan)


def test_projection_collapse():
    plan = Project(Project(SCAN, ("a", "b", "c")), ("a", "b"))
    assert optimize(plan, 1).fingerprint() == Project(SCAN, ("a", "b")).fingerprint()


def test_projection_not_collapsed_when_outer_widens():
    plan = Project(Project(SCAN, ("a",)), ("a", "b"))
    assert optimize(plan, 1).fingerprint() == plan.fingerprint()


def test_filter_pushed_under_projection():
    plan = Filter(Project(SCAN, ("a", "b")), _pred("a", 1))
    pushed = optimize(plan, 1)
    expected = Project(Filter(SCAN, _pred("a", 1)), ("a", "b"))
    assert pushed.fingerprint() == expected.fingerprint()


def test_filter_not_pushed_when_predicate_reads_other_columns():
    plan = Filter(Project(SCAN, ("a",)), _pred("b", 1))
    assert optimize(plan, 1).fingerprint() == plan.fingerprint()


def test_limit_into_sort():
    plan = Limit(Sort(SCAN, "a", ascending=False), 5)
    fused = optimize(plan, 1)
    expected = Sort(SCAN, "a", ascending=False, limit=5)
    assert fused.fingerprint() == expected.fingerprint()


def test_retargetable_predicate_gate():
    assert plan_is_retargetable(Filter(SCAN, _pred("a", 1)))
    assert not plan_is_retargetable(RawQuery("SELECT 1"))


# ----------------------------------------------------------------------
# Fusion measurably reduces nesting depth of the generated text
# ----------------------------------------------------------------------
def test_filter_fusion_reduces_sql_nesting(postgres):
    base = PostgresConnector(postgres, optimization_level=0)
    fused = PostgresConnector(postgres, optimization_level=1)
    scanfused = PostgresConnector(postgres, optimization_level=2)

    def chained(connector):
        af = PolyFrame("Bench", "data", connector)
        return af[af["ten"] > 2][af["two"] == 1]

    depth0 = base.nesting_depth(chained(base).query)
    depth1 = fused.nesting_depth(chained(fused).query)
    depth2 = scanfused.nesting_depth(chained(scanfused).query)
    assert depth1 < depth0
    assert depth2 < depth1
    assert depth2 == 1  # single WHERE over the stored table

    # Same records either way.
    rows0 = sorted(r["unique2"] for r in chained(base).collect().to_records())
    rows2 = sorted(r["unique2"] for r in chained(scanfused).collect().to_records())
    assert rows0 == rows2


def test_mongo_depth_counts_pipeline_stages(mongodb):
    base = MongoDBConnector(mongodb, optimization_level=0)
    fused = MongoDBConnector(mongodb, optimization_level=2)
    af0 = PolyFrame("Bench", "data", base)
    af2 = PolyFrame("Bench", "data", fused)
    q0 = af0[["two", "four"]].query
    q2 = af2[["two", "four"]].query
    assert base.nesting_depth(q0) == 2  # empty $match + $project
    assert fused.nesting_depth(q2) == 1  # fused into the scan


# ----------------------------------------------------------------------
# Compiled-query cache
# ----------------------------------------------------------------------
def test_compile_cache_hits_on_repeated_plans(postgres):
    connector = PostgresConnector(postgres)
    af = PolyFrame("Bench", "data", connector)
    filtered = af[af["ten"] > 2]
    text_first = filtered.query
    assert connector.compile_cache.stats()["misses"] == 1
    assert connector.compile_cache.stats()["hits"] == 0
    # The same logical operations, phrased again, share the fingerprint.
    again = af[af["ten"] > 2]
    assert again.query == text_first
    assert connector.compile_cache.stats()["hits"] == 1
    assert connector.compile_cache.stats()["misses"] == 1


def test_cache_key_distinguishes_levels(postgres):
    connector = PostgresConnector(postgres, optimization_level=0)
    af = PolyFrame("Bench", "data", connector)
    filtered = af[af["ten"] > 2]
    level0 = filtered._compile()
    level2 = filtered._compile(level=2)
    assert level0.text != level2.text
    assert not level0.cache_hit and not level2.cache_hit
    assert filtered._compile(level=2).cache_hit


def test_cache_counters_surface_through_query_stats(postgres):
    connector = PostgresConnector(postgres)
    results = []
    original_send = connector.send

    def spy(query, collection, **kwargs):
        result = original_send(query, collection, **kwargs)
        results.append(result)
        return result

    connector.send = spy
    try:
        af = PolyFrame("Bench", "data", connector)
        len(af)
        len(af)
    finally:
        connector.send = original_send
    assert results[0].stats.compile_cache_misses == 1
    assert results[0].stats.compile_cache_hits == 0
    assert results[1].stats.compile_cache_hits == 1
    assert results[1].stats.compile_cache_misses == 0


def test_compile_log_records_every_compilation(postgres):
    connector = PostgresConnector(postgres)
    af = PolyFrame("Bench", "data", connector)
    mark = len(connector.compile_log)
    af.head(2)
    records = connector.compile_log[mark:]
    assert len(records) == 1
    assert not records[0].cache_hit
    assert records[0].compile_ms >= 0.0
    assert records[0].depth >= 1


# ----------------------------------------------------------------------
# Retargeting
# ----------------------------------------------------------------------
def test_retarget_recompiles_same_plan(all_connectors):
    pg = all_connectors["postgres"]
    adb = all_connectors["asterixdb"]
    af = PolyFrame("Bench", "data", pg)
    pipeline = af[af["ten"] > 5][["unique2", "ten"]]
    moved = pipeline.retarget(adb)
    assert moved.connector is adb
    assert moved.plan.fingerprint() == pipeline.plan.fingerprint()
    assert moved.query != pipeline.query  # different language...
    rows_pg = sorted(r["unique2"] for r in pipeline.collect().to_records())
    rows_adb = sorted(r["unique2"] for r in moved.collect().to_records())
    assert rows_pg == rows_adb  # ...same answer


def test_retarget_all_four_backends_agree(all_connectors):
    counts = set()
    for connector in all_connectors.values():
        af = PolyFrame("Bench", "data", connector)
        counts.add(len(af[af["onePercent"] >= 50]))
    assert len(counts) == 1


def test_retarget_refuses_raw_query_frames(all_connectors):
    pg = all_connectors["postgres"]
    af = PolyFrame("Bench", "data", pg)
    raw = af._with_query('SELECT * FROM Bench.data t WHERE t."ten" > 5')
    with pytest.raises(ConnectorError, match="cannot be retargeted"):
        raw.retarget(all_connectors["asterixdb"])


def test_retarget_validates_target_dataset(all_connectors):
    pg = all_connectors["postgres"]
    af = PolyFrame("Bench", "data", pg)
    missing = PolyFrame("Bench", "nope", pg, validate=False)
    assert missing.plan.fingerprint() == Scan("Bench", "nope").fingerprint()
    with pytest.raises(ConnectorError, match="does not exist"):
        missing.retarget(all_connectors["asterixdb"])
    # validate=False defers to action time.
    deferred = af.retarget(all_connectors["mongodb"], validate=False)
    assert deferred.connector is all_connectors["mongodb"]


# ----------------------------------------------------------------------
# explain()
# ----------------------------------------------------------------------
def test_explain_default_is_query_text(all_connectors):
    af = PolyFrame("Bench", "data", all_connectors["postgres"])
    assert af.explain() == af.query


def test_explain_verbose_three_stages(postgres):
    connector = PostgresConnector(postgres, optimization_level=0)
    af = PolyFrame("Bench", "data", connector)
    report = af[af["ten"] > 2].explain(verbose=True)
    assert "-- logical plan (optimization level 0) --" in report
    assert "Filter[(ten > 2)]" in report
    assert "Scan[Bench.data]" in report
    assert "-- generated query (PostgresConnector" in report
    assert "SELECT * FROM (" in report
    assert "-- backend plan --" in report


def test_explain_verbose_without_backend_plan(all_connectors):
    af = PolyFrame("Bench", "data", all_connectors["mongodb"])
    report = af.explain(verbose=True)
    assert "-- backend plan --" in report
    assert "unavailable" in report


def test_explain_verbose_shows_optimized_plan(postgres):
    connector = PostgresConnector(postgres, optimization_level=1)
    af = PolyFrame("Bench", "data", connector)
    report = af[af["ten"] > 2][af["two"] == 1].explain(verbose=True)
    assert "-- optimized plan --" in report


# ----------------------------------------------------------------------
# Raw-query escape hatch
# ----------------------------------------------------------------------
def test_with_query_compiles_verbatim(all_connectors):
    pg = all_connectors["postgres"]
    af = PolyFrame("Bench", "data", pg)
    text = 'SELECT * FROM Bench.data t WHERE t."ten" > 5'
    raw = af._with_query(text)
    assert raw.query == text
    assert len(raw) == len(af[af["ten"] > 5])


def test_query_constructor_arg_is_raw_plan(postgres):
    connector = PostgresConnector(postgres)
    text = 'SELECT * FROM Bench.data t WHERE t."two" = 0'
    af = PolyFrame("Bench", "data", connector, text, validate=False)
    assert af.plan.fingerprint() == RawQuery(text).fingerprint()
    assert af.query == text
    # Further transformations still compose on top of the raw text.
    assert af.sort_values("unique1").query.startswith(text)


def test_raw_frames_survive_optimization_levels(postgres):
    connector = PostgresConnector(postgres, optimization_level=2)
    text = 'SELECT * FROM Bench.data t WHERE t."two" = 0'
    raw = PolyFrame("Bench", "data", connector, text, validate=False)
    assert raw.query == text  # RawQuery passes through the optimizer


def test_rule_overlay_still_composes_with_plans(postgres):
    """User rule overrides at connection time apply to plan compilation."""
    connector = PostgresConnector(
        postgres,
        {"q6": "SELECT * FROM ($subquery) t WHERE ($statement)"},
        optimization_level=0,
    )
    af = PolyFrame("Bench", "data", connector)
    filtered = af[af["ten"] > 5]
    assert "WHERE (" in filtered.query
    plain = PolyFrame("Bench", "data", PostgresConnector(postgres))
    assert len(filtered) == len(plain[plain["ten"] > 5])


# ----------------------------------------------------------------------
# describe() numeric inference
# ----------------------------------------------------------------------
@pytest.fixture()
def people_connector(people):
    db = SQLDatabase(name="postgres")
    db.create_table("Test.people")
    db.insert("Test.people", people)
    return PostgresConnector(db)


def test_describe_sees_past_leading_nulls(people_connector):
    """Record 0 has no ``score``; one-record sampling used to miss it."""
    af = PolyFrame("Test", "people", people_connector)
    summary = af.describe()
    assert "score" in summary.columns
    assert "age" in summary.columns
    assert "name" not in summary.columns  # strings stay excluded
    assert "lang" not in summary.columns


def test_describe_caches_numeric_inference(people_connector):
    af = PolyFrame("Test", "people", people_connector)
    af.describe()
    queries_first = len(people_connector.send_log)
    af.describe()
    queries_second = len(people_connector.send_log) - queries_first
    # The second call skips the sampling query: only the aggregate runs.
    assert queries_second == 1


def test_describe_still_profiles_wisconsin(all_frames):
    for name, af in all_frames.items():
        summary = af.describe()
        assert "unique1" in summary.columns, name
