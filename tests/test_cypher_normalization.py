"""Unit tests for Cypher clause normalization and executor internals."""

from __future__ import annotations

import pytest

from repro.graphdb.cypher_ast import MatchClause, WithClause
from repro.graphdb.cypher_parser import parse
from repro.graphdb.executor import CypherExecutor, NodeHandle, _MatchStep, _normalize
from repro.graphdb.store import GraphStore
from repro.sqlengine.result import QueryStats


def normalize(cypher: str):
    return _normalize(parse(cypher))


class TestNormalization:
    def test_passthrough_where_merges_into_match(self):
        steps = normalize("MATCH(t: d)\nWITH t WHERE t.a = 1\nRETURN COUNT(*) AS c")
        assert len(steps) == 2
        assert isinstance(steps[0], _MatchStep)
        assert steps[0].where is not None

    def test_multiple_passthroughs_merge(self):
        steps = normalize(
            "MATCH(t: d)\nWITH t WHERE t.a = 1\nWITH t WHERE t.b = 2\nRETURN t"
        )
        assert len(steps) == 2
        # Both predicates folded into one AND tree.
        from repro.graphdb.executor import _conjuncts

        assert len(_conjuncts(steps[0].where)) == 2

    def test_order_by_becomes_hint(self):
        steps = normalize(
            "MATCH(t: d)\nWITH t ORDER BY t.a DESC\nRETURN t\nLIMIT 5"
        )
        assert steps[0].order == ("t", "a", True)
        assert steps[0].limit_hint == 5

    def test_limit_hint_only_for_passthrough_return(self):
        steps = normalize(
            "MATCH(t: d)\nWITH t ORDER BY t.a DESC\nRETURN t{'a': t.a}\nLIMIT 5"
        )
        assert steps[0].order is not None
        assert steps[0].limit_hint is None  # RETURN reshapes rows

    def test_projection_with_not_merged(self):
        steps = normalize("MATCH(t: d)\nWITH t{'a': t.a}\nRETURN t")
        assert len(steps) == 3  # match, projection WITH, return

    def test_aggregating_with_not_merged(self):
        steps = normalize(
            "MATCH(t: d)\nWITH {'m': max(t.a)} AS t\nRETURN t"
        )
        assert len(steps) == 3

    def test_consecutive_matches_merge(self):
        steps = normalize(
            "MATCH(t: d)\nMATCH (t), (r: e)\nWHERE t.a = r.a\nRETURN COUNT(*) AS c"
        )
        assert len(steps) == 2
        assert len(steps[0].patterns) == 3  # t, t (dup), r


class TestNodeHandle:
    def test_get_and_materialize(self):
        store = GraphStore()
        node = store.create_node("L", {"a": 1, "s": "x"})
        handle = NodeHandle(store, node)
        assert handle.get("a") == 1
        assert handle.get("missing") is None  # Cypher: absent property is null
        assert handle.materialize() == {"a": 1, "s": "x"}
        assert "NodeHandle" in repr(handle)


class TestExecutorInternals:
    def test_unlabeled_first_pattern_rejected(self):
        store = GraphStore()
        store.create_node("L", {"a": 1})
        executor = CypherExecutor(store, QueryStats())
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            executor.run(parse("MATCH(t)\nRETURN COUNT(*) AS c"))

    def test_cartesian_expansion_without_join_predicate(self):
        store = GraphStore()
        for value in range(3):
            store.create_node("L", {"a": value})
        for value in range(2):
            store.create_node("R", {"b": value})
        executor = CypherExecutor(store, QueryStats())
        result = executor.run(
            parse("MATCH (t: L), (r: R)\nRETURN COUNT(*) AS c")
        )
        assert result == [6]

    def test_order_without_index_still_sorts(self):
        store = GraphStore()
        for value in (3, 1, 2):
            store.create_node("L", {"a": value})
        executor = CypherExecutor(store, QueryStats())
        result = executor.run(
            parse("MATCH(t: L)\nWITH t ORDER BY t.a DESC\nRETURN t\nLIMIT 2")
        )
        assert [record["a"] for record in result] == [3, 2]

    def test_multi_key_order_in_with(self):
        store = GraphStore()
        for a, b in ((1, 2), (1, 1), (0, 9)):
            store.create_node("L", {"a": a, "b": b})
        executor = CypherExecutor(store, QueryStats())
        result = executor.run(
            parse(
                "MATCH(t: L)\nWITH t{'a': t.a, 'b': t.b}\n"
                "WITH t ORDER BY t.a ASC, t.b ASC\nRETURN t"
            )
        )
        assert [(r["a"], r["b"]) for r in result] == [(0, 9), (1, 1), (1, 2)]
