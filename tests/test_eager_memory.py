"""Memory accounting and I/O tests for the eager baseline."""

from __future__ import annotations

import gc
import json

import pytest

from repro.eager import frame_from_records, memory_budget, read_json
from repro.eager.memory import (
    GLOBAL_ACCOUNTANT,
    MemoryAccountant,
    estimate_column_bytes,
    estimate_value_bytes,
)
from repro.errors import MemoryBudgetExceeded


class TestEstimates:
    def test_value_bytes_by_type(self):
        assert estimate_value_bytes(None) < estimate_value_bytes(1)
        assert estimate_value_bytes("abcdef") > estimate_value_bytes("a")
        assert estimate_value_bytes(True) > 0
        assert estimate_value_bytes(1.5) == estimate_value_bytes(1)

    def test_column_bytes_scale_with_length(self):
        small = estimate_column_bytes([1] * 10)
        large = estimate_column_bytes([1] * 100)
        assert large > small * 5


class TestAccountant:
    def test_charge_release(self):
        accountant = MemoryAccountant()
        accountant.charge(100)
        assert accountant.live_bytes == 100
        accountant.release(40)
        assert accountant.live_bytes == 60
        assert accountant.peak_bytes == 100

    def test_budget_enforced(self):
        accountant = MemoryAccountant()
        accountant.set_budget(100)
        accountant.charge(90)
        with pytest.raises(MemoryBudgetExceeded):
            accountant.charge(20)
        # The failed charge did not change the live total.
        assert accountant.live_bytes == 90

    def test_budget_is_memory_error(self):
        accountant = MemoryAccountant()
        accountant.set_budget(1)
        with pytest.raises(MemoryError):
            accountant.charge(10)

    def test_track_releases_on_gc(self):
        accountant = MemoryAccountant()

        class Owner:
            pass

        owner = Owner()
        accountant.track(owner, 500)
        assert accountant.live_bytes == 500
        del owner
        gc.collect()
        assert accountant.live_bytes == 0


class TestBudgetContext:
    def test_frames_charge_global_accountant(self):
        before = GLOBAL_ACCOUNTANT.live_bytes
        frame = frame_from_records([{"a": n} for n in range(100)])
        assert GLOBAL_ACCOUNTANT.live_bytes > before
        del frame
        gc.collect()

    def test_budget_context_restores_previous(self):
        with memory_budget(10**9):
            assert GLOBAL_ACCOUNTANT.budget == 10**9
        assert GLOBAL_ACCOUNTANT.budget is None

    def test_oom_on_large_frame(self):
        gc.collect()
        with memory_budget(GLOBAL_ACCOUNTANT.live_bytes + 2000):
            with pytest.raises(MemoryBudgetExceeded):
                frame_from_records([{"a": n, "s": "x" * 50} for n in range(500)])

    def test_intermediates_count_against_budget(self):
        """Eager evaluation's intermediate materialization is charged too."""
        gc.collect()
        frame = frame_from_records([{"a": n} for n in range(2000)])
        headroom = GLOBAL_ACCOUNTANT.live_bytes + 30_000
        with memory_budget(headroom):
            with pytest.raises(MemoryBudgetExceeded):
                # Each mask/filter materializes; several intermediates
                # exceed the headroom even though each alone might fit.
                kept = [frame[frame["a"] > i] for i in range(10)]
                assert kept  # pragma: no cover


class TestReadJson:
    def test_json_lines(self, tmp_path):
        path = tmp_path / "data.json"
        with open(path, "w") as handle:
            for n in range(10):
                handle.write(json.dumps({"n": n}) + "\n")
        frame = read_json(path)
        assert len(frame) == 10
        assert frame.column_values("n") == list(range(10))

    def test_json_array(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text(json.dumps([{"n": 1}, {"n": 2}]))
        assert len(read_json(path)) == 2

    def test_missing_keys_become_none(self, tmp_path):
        path = tmp_path / "data.json"
        with open(path, "w") as handle:
            handle.write(json.dumps({"a": 1}) + "\n")
            handle.write(json.dumps({"a": 2, "b": 5}) + "\n")
        frame = read_json(path)
        assert frame.column_values("b") == [None, 5]

    def test_creation_peak_exceeds_final_size(self, tmp_path):
        """read_json charges a transient parse buffer (the pandas RAM rule)."""
        path = tmp_path / "data.json"
        with open(path, "w") as handle:
            for n in range(300):
                handle.write(json.dumps({"n": n, "s": "x" * 40}) + "\n")
        gc.collect()
        base = GLOBAL_ACCOUNTANT.live_bytes
        frame = read_json(path)
        final = GLOBAL_ACCOUNTANT.live_bytes - base
        peak = GLOBAL_ACCOUNTANT.peak_bytes - base
        assert peak > final  # the parse buffer raised the peak
        del frame

    def test_non_dict_record_rejected(self):
        with pytest.raises(TypeError):
            frame_from_records([[1, 2]])
