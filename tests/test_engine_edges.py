"""Engine edge cases not covered elsewhere: OFFSET, DISTINCT VALUE, skips."""

from __future__ import annotations

import pytest

from repro.docstore import MongoDatabase
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB


class TestSqlppEdges:
    @pytest.fixture()
    def adb(self):
        db = AsterixDB(query_prep_overhead=0.0)
        db.create_dataverse("E")
        db.create_dataset("E", "d", primary_key="id")
        db.load("E.d", [{"id": i, "v": i % 4} for i in range(40)])
        return db

    def test_distinct_value(self, adb):
        result = adb.execute("SELECT DISTINCT VALUE t.v FROM E.d t")
        assert sorted(result.records) == [0, 1, 2, 3]

    def test_offset(self, adb):
        result = adb.execute(
            "SELECT VALUE t.id FROM E.d t ORDER BY id LIMIT 3 OFFSET 5"
        )
        assert result.records == [5, 6, 7]

    def test_between(self, adb):
        result = adb.execute(
            "SELECT VALUE COUNT(*) FROM E.d t WHERE t.id BETWEEN 10 AND 19"
        )
        assert result.scalar() == 10

    def test_in_list(self, adb):
        result = adb.execute(
            "SELECT VALUE COUNT(*) FROM E.d t WHERE t.v IN (0, 3)"
        )
        assert result.scalar() == 20

    def test_not_in_list(self, adb):
        result = adb.execute(
            "SELECT VALUE COUNT(*) FROM E.d t WHERE t.v NOT IN (0, 3)"
        )
        assert result.scalar() == 20

    def test_limit_zero(self, adb):
        result = adb.execute("SELECT VALUE t FROM E.d t LIMIT 0")
        assert result.records == []


class TestMongoEdges:
    @pytest.fixture()
    def db(self):
        database = MongoDatabase(query_prep_overhead=0.0)
        database.create_collection("d")
        database.collection("d").insert_many(
            [{"v": i % 4, "tags": ["a", "b"] if i % 2 else []} for i in range(20)]
        )
        return database

    def test_in_operator(self, db):
        result = db.aggregate("d", [
            {"$match": {"$expr": {"$in": ["$v", [0, 3]]}}},
            {"$count": "n"},
        ])
        assert result.records == [{"n": 10}]

    def test_in_requires_array(self, db):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            db.aggregate("d", [{"$match": {"$expr": {"$in": ["$v", "$v"]}}}])

    def test_string_unwind_form(self, db):
        result = db.aggregate("d", [{"$unwind": "$tags"}, {"$count": "n"}])
        assert result.records == [{"n": 20}]

    def test_empty_count_returns_no_rows(self, db):
        result = db.aggregate("d", [
            {"$match": {"v": 99}},
            {"$count": "n"},
        ])
        assert result.records == [{"n": 0}]


class TestCypherEdges:
    @pytest.fixture()
    def db(self):
        database = Neo4jDatabase(query_prep_overhead=0.0)
        database.load("d", [{"v": i % 4, "name": f"n{i}"} for i in range(20)])
        return database

    def test_in_list(self, db):
        result = db.execute(
            "MATCH(t: d)\nWITH t WHERE t.v IN [0, 3]\nRETURN COUNT(*) AS c"
        )
        assert result.records == [10]

    def test_skip_keyword_unused_but_limit_works(self, db):
        result = db.execute("MATCH(t: d)\nRETURN t\nLIMIT 2")
        assert len(result) == 2

    def test_multiple_return_items(self, db):
        result = db.execute("MATCH(t: d)\nRETURN t.v AS v, t.name AS name\nLIMIT 1")
        assert result.records == [{"v": 0, "name": "n0"}]

    def test_not_operator(self, db):
        result = db.execute(
            "MATCH(t: d)\nWITH t WHERE NOT t.v = 0\nRETURN COUNT(*) AS c"
        )
        assert result.records == [15]


class TestSqlEdges:
    def test_count_empty_table(self):
        db = SQLDatabase()
        db.create_table("t")
        assert db.execute("SELECT COUNT(*) FROM t x").scalar() == 0

    def test_group_by_on_empty_table(self):
        db = SQLDatabase()
        db.create_table("t")
        result = db.execute("SELECT k, COUNT(k) AS c FROM t x GROUP BY k")
        assert result.records == []

    def test_boolean_literals_in_where(self):
        db = SQLDatabase()
        db.create_table("t")
        db.insert("t", [{"flag": True}, {"flag": False}])
        result = db.execute("SELECT COUNT(*) FROM t x WHERE flag = TRUE")
        assert result.scalar() == 1
