"""Query-trace logging tests."""

from __future__ import annotations

import logging

from repro import PolyFrame, PostgresConnector
from repro.sqlengine import SQLDatabase


def make_frame():
    db = SQLDatabase()
    db.create_table("T.d", primary_key="id")
    db.insert("T.d", [{"id": i, "v": i % 3} for i in range(30)])
    return PolyFrame("T", "d", PostgresConnector(db))


def test_debug_trace_logs_queries(caplog):
    frame = make_frame()
    with caplog.at_level(logging.DEBUG, logger="repro.polyframe"):
        frame.head(3)
    assert len(caplog.records) == 1
    message = caplog.records[0].getMessage()
    assert "SELECT" in message and "3 rows" in message


def test_no_trace_by_default(caplog):
    frame = make_frame()
    with caplog.at_level(logging.INFO, logger="repro.polyframe"):
        frame.head(3)
    assert not caplog.records


def test_every_action_traced(caplog):
    frame = make_frame()
    with caplog.at_level(logging.DEBUG, logger="repro.polyframe"):
        len(frame)
        frame["v"].max()
        frame.collect()
    # Count the DEBUG trace lines only: under the CI chaos env the
    # global retry policy makes the streaming collect() materialize,
    # which emits a one-time WARNING on the same logger.
    traces = [r for r in caplog.records if r.levelno == logging.DEBUG]
    assert len(traces) == 3
