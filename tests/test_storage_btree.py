"""B+ tree unit and property-based tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.btree import BPlusTree, bulk_load
from repro.storage.keys import index_key


def build(pairs, order=4, unique=False):
    tree = BPlusTree(order=order, unique=unique)
    for key, value in pairs:
        tree.insert(index_key(key), value)
    return tree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.distinct_keys == 0
        assert tree.search(index_key(1)) == []
        assert list(tree.scan()) == []
        assert tree.min_key() is None
        assert tree.max_key() is None

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_insert_and_search(self):
        tree = build([(5, "a"), (3, "b"), (8, "c")])
        assert tree.search(index_key(5)) == ["a"]
        assert tree.search(index_key(3)) == ["b"]
        assert tree.search(index_key(9)) == []
        assert len(tree) == 3

    def test_duplicate_keys_accumulate(self):
        tree = build([(1, "a"), (1, "b"), (1, "c")])
        assert sorted(tree.search(index_key(1))) == ["a", "b", "c"]
        assert tree.distinct_keys == 1
        assert len(tree) == 3

    def test_unique_index_rejects_duplicates(self):
        tree = build([(1, "a")], unique=True)
        with pytest.raises(StorageError):
            tree.insert(index_key(1), "b")

    def test_contains(self):
        tree = build([(1, "a")])
        assert tree.contains(index_key(1))
        assert not tree.contains(index_key(2))

    def test_min_max_keys(self):
        tree = build([(n, n) for n in (7, 2, 9, 4)])
        assert tree.min_key() == index_key(2)
        assert tree.max_key() == index_key(9)

    def test_height_grows_with_splits(self):
        tree = build([(n, n) for n in range(100)], order=4)
        assert tree.height() > 1
        tree.check_invariants()

    def test_count_entries_matches_len(self):
        tree = build([(n % 7, n) for n in range(200)], order=4)
        assert tree.count_entries() == len(tree) == 200


class TestScans:
    def setup_method(self):
        self.tree = build([(n, f"v{n}") for n in range(50)], order=4)

    def test_full_forward_scan_is_sorted(self):
        keys = [key for key, _ in self.tree.scan()]
        assert keys == sorted(keys)
        assert len(keys) == 50

    def test_full_backward_scan_is_reverse_sorted(self):
        keys = [key for key, _ in self.tree.scan(reverse=True)]
        assert keys == sorted(keys, reverse=True)

    def test_bounded_range(self):
        got = [key[1] for key, _ in self.tree.scan(index_key(10), index_key(20))]
        assert got == list(range(10, 21))

    def test_exclusive_bounds(self):
        got = [
            key[1]
            for key, _ in self.tree.scan(
                index_key(10), index_key(20), low_inclusive=False, high_inclusive=False
            )
        ]
        assert got == list(range(11, 20))

    def test_backward_bounded_range(self):
        got = [
            key[1]
            for key, _ in self.tree.scan(index_key(10), index_key(20), reverse=True)
        ]
        assert got == list(range(20, 9, -1))

    def test_low_bound_only(self):
        got = [key[1] for key, _ in self.tree.scan(low=index_key(45))]
        assert got == [45, 46, 47, 48, 49]

    def test_high_bound_only(self):
        got = [key[1] for key, _ in self.tree.scan(high=index_key(4))]
        assert got == [0, 1, 2, 3, 4]

    def test_empty_range(self):
        assert list(self.tree.scan(index_key(100), index_key(200))) == []

    def test_keys_iteration(self):
        assert len(list(self.tree.keys())) == 50


class TestDelete:
    def test_delete_existing(self):
        tree = build([(1, "a"), (1, "b"), (2, "c")])
        assert tree.delete(index_key(1), "a")
        assert tree.search(index_key(1)) == ["b"]
        assert len(tree) == 2

    def test_delete_last_payload_removes_key(self):
        tree = build([(1, "a")])
        assert tree.delete(index_key(1), "a")
        assert not tree.contains(index_key(1))
        assert tree.distinct_keys == 0

    def test_delete_missing_returns_false(self):
        tree = build([(1, "a")])
        assert not tree.delete(index_key(2), "a")
        assert not tree.delete(index_key(1), "zzz")


class TestBulkLoad:
    def test_bulk_load_equivalent_to_inserts(self):
        pairs = [(index_key(n % 13), n) for n in range(300)]
        tree = bulk_load(pairs, order=4)
        tree.check_invariants()
        assert len(tree) == 300
        assert sorted(tree.search(index_key(0))) == sorted(
            n for n in range(300) if n % 13 == 0
        )


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(-1000, 1000), st.integers(0, 10_000)),
        max_size=300,
    ),
    st.integers(3, 16),
)
def test_property_matches_sorted_reference(pairs, order):
    """Tree contents and orderings always match a sorted reference model."""
    tree = BPlusTree(order=order)
    reference: dict[tuple, list[int]] = {}
    for key, value in pairs:
        normalized = index_key(key)
        tree.insert(normalized, value)
        reference.setdefault(normalized, []).append(value)
    tree.check_invariants()
    assert len(tree) == sum(len(v) for v in reference.values())
    assert tree.distinct_keys == len(reference)
    expected = [
        (key, value) for key in sorted(reference) for value in reference[key]
    ]
    assert list(tree.scan()) == expected
    assert [key for key, _ in tree.scan(reverse=True)] == [
        key for key, _ in reversed(expected)
    ]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 200), min_size=1, max_size=200),
    st.integers(0, 200),
    st.integers(0, 200),
)
def test_property_range_scan_matches_filter(keys, raw_low, raw_high):
    low, high = min(raw_low, raw_high), max(raw_low, raw_high)
    tree = build([(key, key) for key in keys], order=5)
    got = [key[1] for key, _ in tree.scan(index_key(low), index_key(high))]
    expected = sorted(key for key in keys if low <= key <= high)
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 100)), max_size=150))
def test_property_delete_then_lookup(pairs):
    tree = BPlusTree(order=4)
    for key, value in pairs:
        tree.insert(index_key(key), value)
    for key, value in pairs[::2]:
        tree.delete(index_key(key), value)
    survivors: dict[tuple, list[int]] = {}
    deleted = list(pairs[::2])
    for key, value in pairs:
        if (key, value) in deleted:
            deleted.remove((key, value))
            continue
        survivors.setdefault(index_key(key), []).append(value)
    for key, values in survivors.items():
        assert sorted(tree.search(key)) == sorted(values)
