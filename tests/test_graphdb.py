"""Graph store and Cypher tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError, ExecutionError, ParseError
from repro.graphdb import Neo4jDatabase
from repro.graphdb.cypher_parser import parse
from repro.graphdb.cypher_ast import Bin, Func, MapProjection, Prop, WithClause
from repro.graphdb.store import GraphStore
from repro.storage.keys import SENTINEL_MISSING


@pytest.fixture()
def db():
    database = Neo4jDatabase(query_prep_overhead=0.0)
    records = []
    for i in range(300):
        record = {"n": i, "mod": i % 5, "name": f"user{i}", "flag": i % 2 == 0}
        if i % 10 != 0:
            record["score"] = i % 7
        records.append(record)
    database.load("users", records)
    database.create_index("users", "n")
    database.create_index("users", "mod")
    return database


class TestGraphStore:
    def test_count_store_tracks_labels(self):
        store = GraphStore()
        store.create_node("A", {"x": 1})
        store.create_node("A", {"x": 2})
        store.create_node("B", {"x": 3})
        assert store.counts.node_count("A") == 2
        assert store.counts.node_count("B") == 1
        assert store.counts.node_count("C") == 0

    def test_strings_live_in_string_store(self):
        store = GraphStore()
        node = store.create_node("A", {"num": 5, "text": "hello"})
        assert len(store.strings) == 1
        reads_before = store.strings.reads
        assert store.read_property(node, "num") == 5
        assert store.strings.reads == reads_before  # numeric read: no string I/O
        assert store.read_property(node, "text") == "hello"
        assert store.strings.reads == reads_before + 1

    def test_missing_property_is_sentinel(self):
        store = GraphStore()
        node = store.create_node("A", {"x": 1})
        assert store.read_property(node, "y") is SENTINEL_MISSING

    def test_none_property_stored_as_null(self):
        store = GraphStore()
        node = store.create_node("A", {"x": None})
        assert store.read_property(node, "x") is None

    def test_absent_values_not_indexed(self):
        store = GraphStore()
        store.create_node("A", {"x": 1})
        store.create_node("A", {"x": None})
        store.create_node("A", {})
        store.create_index("A", "x")
        assert len(store.index("A", "x")) == 1

    def test_index_maintained_on_insert(self):
        store = GraphStore()
        store.create_index("A", "x")
        store.create_node("A", {"x": 9})
        assert len(store.index("A", "x")) == 1

    def test_duplicate_index_rejected(self):
        store = GraphStore()
        store.create_index("A", "x")
        with pytest.raises(CatalogError):
            store.create_index("A", "x")

    def test_node_properties_materialize(self):
        store = GraphStore()
        node = store.create_node("A", {"x": 1, "s": "v"})
        assert store.node_properties(node) == {"x": 1, "s": "v"}
        assert store.node_label(node) == "A"


class TestCypherParser:
    def test_match_return(self):
        query = parse("MATCH(t: data) RETURN COUNT(*) AS t")
        assert len(query.clauses) == 2
        ret = query.clauses[1]
        assert isinstance(ret, WithClause) and ret.is_return
        assert isinstance(ret.items[0].expr, Func)

    def test_map_projection(self):
        query = parse("MATCH(t: d)\nWITH t{'two': t.two, 'four': t.four}\nRETURN t")
        with_clause = query.clauses[1]
        expr = with_clause.items[0].expr
        assert isinstance(expr, MapProjection)
        assert expr.entries[0][0] == "two"

    def test_map_projection_star_and_var(self):
        query = parse("MATCH(t: d)\nWITH t{.*, r}\nRETURN t")
        expr = query.clauses[1].items[0].expr
        assert expr.include_all and expr.extra_vars == ("r",)

    def test_backtick_keys(self):
        query = parse("MATCH(t: d)\nWITH t{`lang`: t.lang}\nRETURN t")
        assert query.clauses[1].items[0].expr.entries[0][0] == "lang"

    def test_where_and_order(self):
        query = parse(
            "MATCH(t: d)\nWITH t WHERE t.a = 1 AND t.b > 2\n"
            "WITH t ORDER BY t.a DESC\nRETURN t LIMIT 3"
        )
        assert query.clauses[1].where is not None
        assert query.clauses[2].order_by[0].descending
        assert query.clauses[3].limit == 3

    def test_multi_pattern_match(self):
        query = parse("MATCH (t), (r: other) WHERE t.k = r.k RETURN COUNT(*) AS c")
        match = query.clauses[0]
        assert len(match.patterns) == 2
        assert match.patterns[1].label == "other"
        assert isinstance(match.where, Bin)

    def test_is_null(self):
        query = parse("MATCH(t: d)\nWITH t WHERE t.x IS NULL\nRETURN COUNT(*) AS c")
        assert query.clauses[1].where.negated is False

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse("FROB(t: d) RETURN t")
        with pytest.raises(ParseError):
            parse("MATCH(t: d) RETURN t LIMIT x")
        with pytest.raises(ParseError):
            parse("")

    def test_prop_access(self):
        query = parse("MATCH(t: d) RETURN t.name AS n")
        assert query.clauses[1].items[0].expr == Prop("t", "name")


class TestCypherExecution:
    def test_count_store_fast_path(self, db):
        result = db.execute("MATCH(t: users) RETURN COUNT(*) AS t")
        assert result.records == [300]
        assert result.stats.heap_fetches == 0
        assert result.stats.full_scans == 0

    def test_filtered_count_does_not_use_count_store(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH t WHERE t.mod = 1\nRETURN COUNT(*) AS t"
        )
        assert result.records == [60]
        assert result.stats.index_entries > 0  # index seek on mod

    def test_projection_limit_is_lazy(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH t{'n': t.n}\nRETURN t\nLIMIT 4"
        )
        assert len(result) == 4
        assert result.stats.heap_fetches <= 5

    def test_where_range_uses_index(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH t WHERE t.n >= 290 AND t.n <= 295\nRETURN COUNT(*) AS c"
        )
        assert result.records == [6]
        assert result.stats.full_scans == 0

    def test_implicit_grouping(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH {'mod': t.mod, 'c': count(t.mod)} AS t\nRETURN t"
        )
        assert len(result) == 5
        assert all(record["c"] == 60 for record in result.records)

    def test_global_aggregate_map(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH {'mx': max(t.n), 'mn': min(t.n)} AS t\nRETURN t"
        )
        assert result.records == [{"mx": 299, "mn": 0}]

    def test_aggregates_skip_null(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH {'c': count(t.score)} AS t\nRETURN t"
        )
        assert result.records == [{"c": 270}]

    def test_order_by_desc_limit_index_backed(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH t ORDER BY t.n DESC\nRETURN t\nLIMIT 3"
        )
        assert [record["n"] for record in result.records] == [299, 298, 297]
        assert result.stats.full_scans == 0

    def test_index_nested_loop_join(self, db):
        result = db.execute(
            "MATCH(t: users)\nMATCH (t), (r: users)\nWHERE t.n = r.n\n"
            "WITH t{.*, r}\nRETURN COUNT(*) AS c"
        )
        assert result.records == [300]

    def test_is_null_counts_missing(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH t WHERE t.score IS NULL\nRETURN COUNT(*) AS c"
        )
        assert result.records == [30]

    def test_scalar_functions(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH t{'up': upper(t.name)}\nRETURN t\nLIMIT 1"
        )
        assert result.records[0]["up"] == "USER0"

    def test_distinct(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH DISTINCT t{'mod': t.mod}\nRETURN t"
        )
        assert len(result) == 5

    def test_return_node_materializes(self, db):
        result = db.execute("MATCH(t: users)\nRETURN t\nLIMIT 1")
        assert result.records[0]["name"] == "user0"

    def test_arithmetic_and_logic(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH t WHERE t.n % 100 = 0 AND NOT t.n = 200\n"
            "RETURN COUNT(*) AS c"
        )
        assert result.records == [2]

    def test_numeric_scan_avoids_string_store(self, db):
        result = db.execute(
            "MATCH(t: users)\nWITH t WHERE t.flag = true\nRETURN COUNT(*) AS c"
        )
        assert result.records == [150]
        assert result.stats.string_store_reads == 0

    def test_missing_return_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("MATCH(t: users)\nWITH t{'n': t.n}")

    def test_unbound_variable(self, db):
        with pytest.raises(ExecutionError):
            db.execute("MATCH(t: users)\nRETURN z\nLIMIT 1")


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 40), min_size=1, max_size=60), st.integers(0, 40))
def test_property_cypher_count_matches_python(values, pivot):
    db = Neo4jDatabase(query_prep_overhead=0.0)
    db.load("d", [{"v": value} for value in values])
    result = db.execute(f"MATCH(t: d)\nWITH t WHERE t.v >= {pivot}\nRETURN COUNT(*) AS c")
    assert result.records == [sum(1 for value in values if value >= pivot)]
