"""Unit tests for the optimizer's logical rewrite rules (subquery flattening)."""

from __future__ import annotations

import pytest

from repro.sqlengine.logical import (
    ColumnRestrict,
    DerivedBind,
    Filter,
    Limit,
    Project,
    Rebind,
    Scan,
    Sort,
)
from repro.sqlengine.optimizer import (
    Optimizer,
    OptimizerFeatures,
    bindings_of,
    unwrap_rebinds,
)
from repro.sqlengine.parser import parse
from repro.sqlengine.planner import plan_query
from repro.storage.catalog import Catalog


@pytest.fixture()
def optimizer():
    catalog = Catalog()
    catalog.create_table("data", primary_key="id")
    catalog.create_index("data_a", "data", "a")
    return Optimizer(catalog, OptimizerFeatures.postgres())


def rewrite(optimizer, sql, dialect="sqlpp"):
    return optimizer.rewrite(plan_query(parse(sql, dialect)))


class TestFlattening:
    def test_identity_select_value_flattens(self, optimizer):
        plan = rewrite(
            optimizer, "SELECT VALUE t FROM (SELECT VALUE t FROM data t) t LIMIT 1"
        )
        assert "DerivedBind" not in plan.tree_string()

    def test_identity_star_flattens(self, optimizer):
        plan = rewrite(optimizer, "SELECT * FROM (SELECT * FROM data) t LIMIT 1", "sql")
        text = plan.tree_string()
        assert "DerivedBind" not in text
        assert "Scan data" in text

    def test_triple_nesting_flattens(self, optimizer):
        plan = rewrite(
            optimizer,
            "SELECT t.a FROM (SELECT * FROM (SELECT * FROM (SELECT * FROM data) t) t) t",
            "sql",
        )
        assert "DerivedBind" not in plan.tree_string()

    def test_column_projection_becomes_restrict(self, optimizer):
        plan = rewrite(
            optimizer, "SELECT MAX(a) FROM (SELECT a FROM data t) t", "sql"
        )
        text = plan.tree_string()
        assert "ColumnRestrict" in text
        assert "DerivedBind" not in text

    def test_aliased_projection_does_not_flatten(self, optimizer):
        # Renaming columns changes record shape; the derived table stays.
        plan = rewrite(
            optimizer, "SELECT * FROM (SELECT a AS b FROM data t) t LIMIT 1", "sql"
        )
        assert "DerivedBind" in plan.tree_string()

    def test_distinct_blocks_flattening(self, optimizer):
        plan = rewrite(
            optimizer, "SELECT * FROM (SELECT DISTINCT * FROM data t) t LIMIT 1", "sql"
        )
        assert "DerivedBind" in plan.tree_string()

    def test_filter_pushed_to_scan(self, optimizer):
        plan = rewrite(
            optimizer,
            "SELECT * FROM (SELECT * FROM (SELECT * FROM data) t WHERE t.a = 1) t",
            "sql",
        )
        # After pushdown, Filter sits directly above the Scan.
        text = plan.tree_string().splitlines()
        filter_idx = next(i for i, line in enumerate(text) if "Filter" in line)
        assert "Scan" in text[filter_idx + 1]

    def test_adjacent_filters_merge(self, optimizer):
        plan = rewrite(
            optimizer,
            "SELECT * FROM (SELECT * FROM (SELECT * FROM data) t WHERE t.a = 1) t "
            "WHERE t.id = 2",
            "sql",
        )
        assert plan.tree_string().count("Filter") == 1

    def test_limit_plants_topk_hint(self, optimizer):
        plan = rewrite(
            optimizer,
            "SELECT * FROM (SELECT * FROM data) t ORDER BY a DESC LIMIT 7",
            "sql",
        )
        assert "(top 7)" in plan.tree_string()

    def test_flattening_disabled_preserves_nesting(self):
        catalog = Catalog()
        catalog.create_table("data")
        raw = Optimizer(catalog, OptimizerFeatures.unoptimized())
        plan = rewrite(raw, "SELECT * FROM (SELECT * FROM data) t LIMIT 1", "sql")
        assert "DerivedBind" in plan.tree_string()


class TestPlanShapeHelpers:
    def test_bindings_of(self):
        scan = Scan("data", "x")
        assert bindings_of(scan) == {"x"}
        assert bindings_of(Rebind(scan, "x", "y")) == {"y"}
        assert bindings_of(Filter(scan, None)) == {"x"}  # type: ignore[arg-type]

    def test_unwrap_rebinds(self):
        scan = Scan("data", "a")
        wrapped = Rebind(Rebind(scan, "a", "b"), "b", "c")
        core, renames = unwrap_rebinds(wrapped)
        assert core is scan
        assert renames == [("b", "c"), ("a", "b")]
