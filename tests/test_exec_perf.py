"""Sort-kernel efficiency regressions.

The materializing sorts (``SortOp`` / ``TopKOp`` / ``RecordSortOp``)
must evaluate each ORDER BY key expression exactly once per input row
(decorate-sort-undecorate), never once per comparison or per sort pass.
These tests count evaluator invocations on a 10k-row sort so any
regression to re-evaluation is an immediate failure, not a slowdown
someone has to notice.

The one wall-clock assertion here (vector vs row on a full scan) takes
the median of three runs and retries once before failing, so a loaded
machine can't flake it; the full-strength 2x pin lives in
``benchmarks/bench_vector_vs_row.py``.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Iterator

from repro.exec.kernels import Descending, sort_records
from repro.sqlengine.ast_nodes import ColumnRef, OrderItem
from repro.sqlengine.expressions import Evaluator
from repro.sqlengine.physical import (
    ExecutionContext,
    PhysicalPlan,
    RecordSortOp,
    SortOp,
    TopKOp,
)
from repro.sqlengine.result import QueryStats

N_ROWS = 10_000


class CountingEvaluator(Evaluator):
    """An evaluator that counts every expression evaluation."""

    def __init__(self) -> None:
        super().__init__("sql")
        self.calls = 0

    def evaluate(self, expr: Any, env: Any) -> Any:
        self.calls += 1
        return super().evaluate(expr, env)


class StubSource(PhysicalPlan):
    """A leaf yielding pre-built rows, bypassing storage."""

    def __init__(self, rows: list) -> None:
        self.rows = rows

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        return iter(self.rows)

    def describe(self) -> str:
        return "StubSource"


def _env_rows(n: int) -> list[dict]:
    return [{"t": {"a": (i * 37) % n, "b": i % 7}} for i in range(n)]


def _ctx(evaluator: Evaluator) -> ExecutionContext:
    return ExecutionContext(catalog=None, evaluator=evaluator, stats=QueryStats())


def _keys() -> tuple[OrderItem, ...]:
    return (
        OrderItem(ColumnRef("a", "t"), descending=True),
        OrderItem(ColumnRef("b", "t")),
    )


def test_sort_evaluates_each_key_once_per_row():
    evaluator = CountingEvaluator()
    op = SortOp(StubSource(_env_rows(N_ROWS)), _keys())
    out = list(op.execute(_ctx(evaluator)))
    assert len(out) == N_ROWS
    assert evaluator.calls == N_ROWS * 2  # one per (row, key), not per pass
    assert out[0]["t"]["a"] == max(row["t"]["a"] for row in _env_rows(N_ROWS))


def test_topk_evaluates_each_key_once_per_row():
    evaluator = CountingEvaluator()
    op = TopKOp(StubSource(_env_rows(N_ROWS)), _keys(), k=5)
    out = list(op.execute(_ctx(evaluator)))
    assert len(out) == 5
    assert evaluator.calls == N_ROWS * 2


def test_record_sort_evaluates_each_key_once_per_row():
    evaluator = CountingEvaluator()
    records = [{"a": (i * 37) % N_ROWS, "b": i % 7} for i in range(N_ROWS)]
    op = RecordSortOp(StubSource(records), _keys())
    out = list(op.execute(_ctx(evaluator)))
    assert len(out) == N_ROWS
    assert evaluator.calls == N_ROWS * 2


def test_sort_is_stable_and_matches_reference():
    """Decorated sort must equal the reference multi-pass stable sort."""
    rows = [{"a": i % 5, "b": i % 3, "i": i} for i in range(200)]

    def key_of(row: dict) -> tuple:
        return (row["a"], row["b"])

    got = sort_records(rows, key_of, [True, False])
    expected = sorted(rows, key=lambda r: r["b"])  # last key first
    expected.sort(key=lambda r: r["a"], reverse=True)
    assert got == expected


def test_descending_wrapper_orders_inversely():
    assert Descending(2) < Descending(1)
    assert not Descending(1) < Descending(2)
    assert [d.inner for d in sorted(Descending(x) for x in (3, 1, 2))] == [3, 2, 1]


# ----------------------------------------------------------------------
# Vector-vs-row wall-clock smoke (flake-resistant)
# ----------------------------------------------------------------------
_SCAN_ROWS = 12_000
_SCAN_QUERY = (
    "SELECT COUNT(*) AS n, SUM(t.unique1) AS s FROM Bench.data t "
    "WHERE t.ten < 8 AND t.onePercent >= 10"
)


def _median_scan_seconds(db, repeats: int = 3) -> float:
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        db.execute(_SCAN_QUERY)
        timings.append(time.perf_counter() - started)
    return statistics.median(timings)


def test_vector_engine_faster_than_row_on_full_scan():
    """Vector execution beats row-at-a-time on a full scan (modest 1.2x pin).

    Median-of-3 timings per engine and one whole-measurement retry keep
    this deterministic-ish check from flaking on a busy host while still
    catching a vector-path regression to row speed.
    """
    from repro.sqlengine import SQLDatabase
    from repro.wisconsin import loaders, wisconsin_records

    records = wisconsin_records(_SCAN_ROWS, seed=2021)
    engines = {}
    for exec_engine in ("row", "vector"):
        db = SQLDatabase(name="postgres", exec_engine=exec_engine)
        loaders.load_postgres(db, "Bench", "data", records, indexes=False)
        engines[exec_engine] = db
    assert engines["vector"].execute(_SCAN_QUERY).stats.exec_engine == "vector"

    for attempt in (1, 2):
        speedup = _median_scan_seconds(engines["row"]) / _median_scan_seconds(
            engines["vector"]
        )
        if speedup >= 1.2:
            break
        if attempt == 2:
            raise AssertionError(
                f"vector engine only {speedup:.2f}x faster than row "
                f"(expected >= 1.2x, median of 3, after one retry)"
            )
