"""Cross-backend tests for ``Series.isin`` (the membership rewrite rule)."""

from __future__ import annotations

import pytest

from repro import PolyFrame
from repro.eager import EagerSeries
from repro.errors import RewriteError


@pytest.fixture(scope="module")
def frames(all_connectors):
    return {
        name: PolyFrame("Bench", "data", connector)
        for name, connector in all_connectors.items()
    }


class TestEagerIsin:
    def test_membership(self):
        series = EagerSeries([1, 2, None, 3])
        assert series.isin([1, 3]).tolist() == [True, False, False, True]

    def test_empty_membership(self):
        assert EagerSeries([1]).isin([]).tolist() == [False]


class TestPolyFrameIsin:
    @pytest.mark.parametrize("backend", ["asterixdb", "postgres", "mongodb", "neo4j"])
    def test_counts_agree_with_python(self, frames, backend, wisconsin):
        frame = frames[backend]
        expected = sum(1 for record in wisconsin if record["ten"] in (2, 5, 7))
        assert len(frame[frame["ten"].isin([2, 5, 7])]) == expected

    @pytest.mark.parametrize("backend", ["asterixdb", "postgres", "mongodb", "neo4j"])
    def test_string_membership(self, frames, backend, wisconsin):
        frame = frames[backend]
        expected = sum(1 for record in wisconsin if record["string4"].startswith("AAAA"))
        target = next(r["string4"] for r in wisconsin if r["string4"].startswith("AAAA"))
        assert len(frame[frame["string4"].isin([target])]) == expected

    def test_single_value_equivalent_to_eq(self, frames):
        frame = frames["postgres"]
        assert len(frame[frame["ten"].isin([4])]) == len(frame[frame["ten"] == 4])

    def test_composes_with_other_masks(self, frames, wisconsin):
        frame = frames["postgres"]
        expected = sum(
            1 for record in wisconsin if record["ten"] in (1, 2) and record["two"] == 0
        )
        mask = frame["ten"].isin([1, 2]) & (frame["two"] == 0)
        assert len(frame[mask]) == expected

    def test_empty_list_rejected(self, frames):
        with pytest.raises(RewriteError):
            frames["postgres"]["ten"].isin([])

    def test_rendered_statements(self, frames):
        assert frames["postgres"]["ten"].isin([1, 2]).statement == 't."ten" IN (1, 2)'
        assert frames["mongodb"]["ten"].isin([1, 2]).statement == '"$in": ["$ten", [1, 2]]'
        assert frames["neo4j"]["ten"].isin([1, 2]).statement == "t.ten IN [1, 2]"
