"""Tests for persistence (SAVE RESULTS) and extension methods."""

from __future__ import annotations

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.docstore import MongoDatabase
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB

RECORDS = [
    {"id": i, "lang": ["en", "fr"][i % 2], "score": i % 5} for i in range(80)
]


@pytest.fixture()
def connectors():
    adb = AsterixDB(query_prep_overhead=0.0)
    adb.create_dataverse("P")
    adb.create_dataset("P", "src", primary_key="id")
    adb.load("P.src", RECORDS)
    pg = SQLDatabase()
    pg.create_table("P.src", primary_key="id")
    pg.insert("P.src", RECORDS)
    mongo = MongoDatabase(query_prep_overhead=0.0)
    mongo.create_collection("src")
    mongo.collection("src").insert_many(RECORDS)
    neo = Neo4jDatabase(query_prep_overhead=0.0)
    neo.load("src", RECORDS)
    return {
        "asterixdb": AsterixDBConnector(adb),
        "postgres": PostgresConnector(pg),
        "mongodb": MongoDBConnector(mongo),
        "neo4j": Neo4jConnector(neo),
    }


class TestPersist:
    @pytest.mark.parametrize("backend", ["asterixdb", "postgres", "mongodb", "neo4j"])
    def test_persist_filtered_frame(self, connectors, backend):
        connector = connectors[backend]
        af = PolyFrame("P", "src", connector)
        english = af[af["lang"] == "en"]
        saved = english.persist("english_only")
        assert saved.collection == "english_only"
        assert len(saved) == 40
        # The persisted dataset is a first-class PolyFrame target.
        assert len(saved[saved["score"] == 0]) == len(
            [r for r in RECORDS if r["lang"] == "en" and r["score"] == 0]
        )

    def test_mongo_persist_uses_out_stage(self, connectors):
        connector = connectors["mongodb"]
        af = PolyFrame("P", "src", connector)
        mark = len(connector.send_log)
        af[af["lang"] == "fr"].persist("french_only")
        # Exactly one query ran: the pipeline with the trailing $out.
        assert len(connector.send_log) == mark + 1

    def test_persist_into_other_namespace(self, connectors):
        connector = connectors["asterixdb"]
        af = PolyFrame("P", "src", connector)
        saved = af.persist("copy", namespace="Archive")
        assert saved.namespace == "Archive"
        assert len(saved) == 80


class TestNunique:
    @pytest.mark.parametrize("backend", ["asterixdb", "postgres", "mongodb", "neo4j"])
    def test_distinct_counts(self, connectors, backend):
        af = PolyFrame("P", "src", connectors[backend])
        assert af["lang"].nunique() == 2
        assert af["score"].nunique() == 5
        assert af["id"].nunique() == 80

    def test_nunique_requires_plain_column(self, connectors):
        from repro.errors import RewriteError

        af = PolyFrame("P", "src", connectors["postgres"])
        with pytest.raises(RewriteError):
            (af["score"] + 1).nunique()
