"""Catalog, heap, keys, and statistics tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError, DuplicateKeyError, StorageError
from repro.storage import Catalog, RowHeap, SENTINEL_MISSING, index_key
from repro.storage.keys import is_absent
from repro.storage.stats import compute_stats


class TestKeys:
    def test_total_order_across_types(self):
        ordered = [SENTINEL_MISSING, None, False, True, -5, 0, 3.5, 10, "a", "b"]
        keys = [index_key(value) for value in ordered]
        assert keys == sorted(keys)

    def test_missing_sorts_before_null(self):
        assert index_key(SENTINEL_MISSING) < index_key(None)

    def test_numbers_compare_across_int_float(self):
        assert index_key(1) < index_key(1.5) < index_key(2)

    def test_tuple_keys(self):
        assert index_key((1, "a")) < index_key((1, "b"))
        assert index_key([1]) < index_key([2])

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            index_key(object())

    def test_is_absent(self):
        assert is_absent(None)
        assert is_absent(SENTINEL_MISSING)
        assert not is_absent(0)
        assert not is_absent("")

    def test_missing_is_falsy_singleton(self):
        assert not SENTINEL_MISSING
        assert repr(SENTINEL_MISSING) == "MISSING"
        assert type(SENTINEL_MISSING)() is SENTINEL_MISSING


class TestRowHeap:
    def test_insert_fetch_roundtrip(self):
        heap = RowHeap()
        rid = heap.insert({"a": 1})
        assert heap.fetch(rid) == {"a": 1}
        assert len(heap) == 1

    def test_rids_are_monotonic(self):
        heap = RowHeap()
        rids = heap.insert_many([{"n": n} for n in range(5)])
        assert rids == [0, 1, 2, 3, 4]

    def test_scan_order_is_insertion_order(self):
        heap = RowHeap()
        heap.insert_many([{"n": n} for n in range(5)])
        assert [record["n"] for record in heap.scan_records()] == [0, 1, 2, 3, 4]

    def test_delete(self):
        heap = RowHeap()
        rid = heap.insert({"a": 1})
        assert heap.delete(rid) == {"a": 1}
        with pytest.raises(StorageError):
            heap.fetch(rid)

    def test_non_dict_record_rejected(self):
        heap = RowHeap()
        with pytest.raises(StorageError):
            heap.insert([1, 2])

    def test_filter(self):
        heap = RowHeap()
        heap.insert_many([{"n": n} for n in range(10)])
        matched = list(heap.filter(lambda record: record["n"] % 2 == 0))
        assert len(matched) == 5


class TestCatalog:
    def test_create_and_resolve_table(self):
        catalog = Catalog()
        catalog.create_table("Test.Users")
        assert catalog.has_table("Test.Users")
        assert catalog.has_table("test.users")  # case-insensitive
        assert catalog.table("Test.Users").name == "Test.Users"

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table("t")
        with pytest.raises(CatalogError):
            catalog.create_table("T")

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_primary_key_creates_unique_index(self):
        catalog = Catalog()
        info = catalog.create_table("t", primary_key="id")
        index = info.index_on("id")
        assert index is not None and index.unique

    def test_primary_key_duplicate_rejected_and_heap_unchanged(self):
        catalog = Catalog()
        catalog.create_table("t", primary_key="id")
        catalog.insert_row("t", {"id": 1})
        with pytest.raises(DuplicateKeyError):
            catalog.insert_row("t", {"id": 1})
        assert catalog.table("t").row_count == 1

    def test_primary_key_must_be_present(self):
        catalog = Catalog()
        catalog.create_table("t", primary_key="id")
        with pytest.raises(StorageError):
            catalog.insert_row("t", {"other": 1})

    def test_secondary_index_maintained_on_insert(self):
        catalog = Catalog()
        catalog.create_table("t")
        catalog.create_index("t_a", "t", "a")
        catalog.insert_row("t", {"a": 5})
        catalog.insert_row("t", {"a": 5})
        index = catalog.table("t").indexes["t_a"]
        assert len(index.tree.search(index_key(5))) == 2

    def test_index_backfills_existing_rows(self):
        catalog = Catalog()
        catalog.create_table("t")
        catalog.insert_row("t", {"a": 1})
        catalog.create_index("t_a", "t", "a")
        assert catalog.table("t").indexes["t_a"].tree.contains(index_key(1))

    def test_absent_values_policy(self):
        with_nulls = Catalog(default_include_absent=True)
        with_nulls.create_table("t")
        with_nulls.insert_row("t", {"a": None})
        with_nulls.insert_row("t", {})
        with_nulls.create_index("t_a", "t", "a")
        assert len(with_nulls.table("t").indexes["t_a"].tree) == 2

        without = Catalog(default_include_absent=False)
        without.create_table("t")
        without.insert_row("t", {"a": None})
        without.insert_row("t", {})
        without.create_index("t_a", "t", "a")
        assert len(without.table("t").indexes["t_a"].tree) == 0

    def test_drop_table_and_index(self):
        catalog = Catalog()
        catalog.create_table("t")
        catalog.create_index("t_a", "t", "a")
        catalog.drop_index("t", "t_a")
        assert catalog.table("t").index_on("a") is None
        catalog.drop_table("t")
        assert not catalog.has_table("t")


class TestStats:
    def test_basic_profile(self):
        records = [{"a": 1, "b": "x"}, {"a": 3, "b": None}, {"a": 2}]
        stats = compute_stats(records)
        assert stats.row_count == 3
        a = stats.columns["a"]
        assert (a.min_value, a.max_value) == (1, 3)
        assert a.distinct_estimate == 3
        b = stats.columns["b"]
        assert b.null_count == 1
        assert b.missing_count == 1
        assert b.absent_count == 2

    def test_open_schema_missing_counted(self):
        records = [{"a": 1}, {"a": 2, "late": 9}]
        stats = compute_stats(records)
        assert stats.columns["late"].missing_count == 1

    def test_selectivity_eq(self):
        records = [{"a": n % 10} for n in range(100)]
        stats = compute_stats(records)
        assert stats.columns["a"].selectivity_eq(100) == pytest.approx(0.1)

    def test_selectivity_range_uniform(self):
        records = [{"a": n} for n in range(100)]
        stats = compute_stats(records)
        sel = stats.columns["a"].selectivity_range(0, 49, 100)
        assert 0.4 < sel < 0.6


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.one_of(st.none(), st.integers(-50, 50)),
        ),
        max_size=60,
    )
)
def test_property_stats_counts_sum_to_rows(records):
    stats = compute_stats(records)
    for column in stats.columns.values():
        total = column.non_null_count + column.null_count + column.missing_count
        assert total == stats.row_count
