"""Regenerate the golden query-text files for the plan-parity suite.

Run from the repo root::

    PYTHONPATH=src python tests/golden/generate_goldens.py

The goldens record, per backend, every query string PolyFrame sends while
evaluating each of the 13 Table III benchmark expressions (seeded params,
600-record Wisconsin dataset).  They were captured from the pre-IR eager
rewriter; optimization level 0 of the plan compiler must reproduce them
byte-for-byte (``tests/test_plan_parity.py``).
"""

from __future__ import annotations

import json
import os

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.docstore import MongoDatabase
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB
from repro.wisconsin import loaders, wisconsin_records

RECORDS = 600
HERE = os.path.dirname(os.path.abspath(__file__))


def build_connectors():
    records = wisconsin_records(RECORDS)
    adb = AsterixDB(query_prep_overhead=0.0)
    loaders.load_asterixdb(adb, "Bench", "data", records)
    loaders.load_asterixdb(adb, "Bench", "data2", records)
    pg = SQLDatabase(name="postgres")
    loaders.load_postgres(pg, "Bench", "data", records)
    loaders.load_postgres(pg, "Bench", "data2", records)
    mongo = MongoDatabase(query_prep_overhead=0.0)
    loaders.load_mongodb(mongo, "data", records)
    loaders.load_mongodb(mongo, "data2", records)
    neo = Neo4jDatabase(query_prep_overhead=0.0)
    loaders.load_neo4j(neo, "data", records)
    loaders.load_neo4j(neo, "data2", records)
    return {
        "asterixdb": AsterixDBConnector(adb),
        "postgres": PostgresConnector(pg),
        "mongodb": MongoDBConnector(mongo),
        "neo4j": Neo4jConnector(neo),
    }


def capture_backend(connector) -> dict[str, list[str]]:
    params = benchmark_params()
    api = DataFrameAPI()
    captured: dict[str, list[str]] = {}
    original_send = connector.send

    for expr in EXPRESSIONS:
        sent: list[str] = []

        def recording_send(query, collection, _sent=sent, **kwargs):
            _sent.append(query)
            return original_send(query, collection, **kwargs)

        connector.send = recording_send
        try:
            df = PolyFrame("Bench", "data", connector)
            df2 = PolyFrame("Bench", "data2", connector)
            expr.run(df, df2, params, api)
        finally:
            connector.send = original_send
        captured[str(expr.id)] = sent
    return captured


def main() -> None:
    for backend, connector in build_connectors().items():
        path = os.path.join(HERE, f"queries_{backend}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(capture_backend(connector), handle, indent=2)
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
