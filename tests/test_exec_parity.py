"""Row-vs-vector execution parity.

The vectorized engine (``repro.exec``) must be observationally identical
to the row engine: same records, same null/MISSING semantics, same
errors.  This suite pins that equivalence three ways:

- all 13 Table III benchmark expressions over seeded Wisconsin data
  (``tenPercent`` absent in ~10% of records, so NULL/MISSING paths run),
  on both the SQL and SQL++ dialects;
- randomized ad-hoc queries (filters, projections, group-bys, sorts,
  DISTINCT) generated from a fixed seed;
- the engine label surfaced through ``QueryStats`` / ``explain``.
"""

from __future__ import annotations

import random

import pytest

from repro import AsterixDBConnector, PolyFrame, PostgresConnector
from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.errors import ExecutionError
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB
from repro.wisconsin import WisconsinGenerator, loaders

NAMESPACE = "Bench"
DATASET = "data"
DATASET2 = "data2"
NUM_RECORDS = 120


def _records():
    # missing_attribute='tenPercent' by default: ~10% of records omit it,
    # exercising NULL (sql) and MISSING (sqlpp) paths in every run.
    return WisconsinGenerator(NUM_RECORDS, seed=20210).records()


def _build(dialect: str, exec_engine: str):
    """A loaded engine pair (connector, df, df2) with no secondary indexes.

    ``indexes=False`` keeps the planner on sequential scans, which is the
    plan shape the vector engine accepts — otherwise most expressions
    would fall back to the row engine and the parity check would be
    vacuous.
    """
    records = _records()
    if dialect == "sql":
        db = SQLDatabase(name="postgres", exec_engine=exec_engine)
        loaders.load_postgres(db, NAMESPACE, DATASET, records, indexes=False)
        loaders.load_postgres(db, NAMESPACE, DATASET2, records, indexes=False)
        connector = PostgresConnector(db)
    else:
        db = AsterixDB(exec_engine=exec_engine)
        loaders.load_asterixdb(db, NAMESPACE, DATASET, records, indexes=False)
        loaders.load_asterixdb(db, NAMESPACE, DATASET2, records, indexes=False)
        connector = AsterixDBConnector(db)
    df = PolyFrame(NAMESPACE, DATASET, connector)
    df2 = PolyFrame(NAMESPACE, DATASET2, connector)
    return db, connector, df, df2


@pytest.fixture(scope="module")
def engine_pairs():
    """(row, vector) system pairs per dialect, loaded once for the module."""
    return {
        dialect: (_build(dialect, "row"), _build(dialect, "vector"))
        for dialect in ("sql", "sqlpp")
    }


def _normalize(value):
    """Comparable form: frames become record lists, scalars stay scalars."""
    if hasattr(value, "to_records"):
        return value.to_records()
    return value


@pytest.mark.parametrize("dialect", ["sql", "sqlpp"])
@pytest.mark.parametrize("expr", EXPRESSIONS, ids=[f"e{e.id}" for e in EXPRESSIONS])
def test_benchmark_expression_parity(engine_pairs, dialect, expr):
    (_, _, row_df, row_df2), (_, _, vec_df, vec_df2) = engine_pairs[dialect]
    params = benchmark_params(seed=7)
    api = DataFrameAPI()
    row_answer = _normalize(expr.run(row_df, row_df2, params, api))
    vec_answer = _normalize(expr.run(vec_df, vec_df2, params, api))
    assert row_answer == vec_answer


@pytest.mark.parametrize("dialect", ["sql", "sqlpp"])
def test_vector_engine_actually_engaged(engine_pairs, dialect):
    """The parity above is only meaningful if the vector path ran."""
    _, connector, _, _ = engine_pairs[dialect][1]
    engines = {record.exec_engine for record in connector.send_log}
    assert "vector" in engines
    assert engines <= {"row", "vector"}


RANDOM_COLUMNS = ("unique1", "two", "four", "ten", "twenty", "onePercent", "tenPercent")


def _random_queries(rng: random.Random, table: str) -> list[str]:
    """Ad-hoc SELECTs mixing filters, sorts, group-bys, and DISTINCT."""
    queries = []
    for _ in range(12):
        column = rng.choice(RANDOM_COLUMNS)
        op = rng.choice((">", "<", ">=", "<=", "=", "<>"))
        value = rng.randint(0, 99)
        shape = rng.randrange(4)
        if shape == 0:
            queries.append(
                f"SELECT t.unique2, t.{column} FROM {table} t "
                f"WHERE t.{column} {op} {value}"
            )
        elif shape == 1:
            queries.append(
                f"SELECT t.unique2 FROM {table} t WHERE t.{column} {op} {value} "
                f"ORDER BY t.unique2 DESC LIMIT {rng.randint(1, 20)}"
            )
        elif shape == 2:
            other = rng.choice(RANDOM_COLUMNS)
            queries.append(
                f"SELECT t.{column} AS k, COUNT(*) AS n, MIN(t.{other}) AS lo "
                f"FROM {table} t GROUP BY t.{column}"
            )
        else:
            queries.append(
                f"SELECT DISTINCT t.{column} FROM {table} t "
                f"WHERE t.{column} {op} {value}"
            )
    queries.append(f"SELECT COUNT(*) AS n FROM {table} t WHERE t.tenPercent IS NULL")
    queries.append(f"SELECT t.tenPercent + t.two AS s FROM {table} t")
    return queries


@pytest.mark.parametrize("dialect", ["sql", "sqlpp"])
def test_randomized_query_parity(engine_pairs, dialect):
    (row_db, _, _, _), (vec_db, _, _, _) = engine_pairs[dialect]
    rng = random.Random(1729)
    for query in _random_queries(rng, f"{NAMESPACE}.{DATASET}"):
        row_result = row_db.execute(query)
        vec_result = vec_db.execute(query)
        assert row_result.records == vec_result.records, query


@pytest.mark.parametrize("dialect", ["sql", "sqlpp"])
def test_error_parity_on_mixed_type_comparison(engine_pairs, dialect):
    """Both engines raise the row engine's exact comparison error."""
    (row_db, _, _, _), (vec_db, _, _, _) = engine_pairs[dialect]
    query = f"SELECT t.unique2 FROM {NAMESPACE}.{DATASET} t WHERE t.stringu1 > 5"
    with pytest.raises(ExecutionError) as row_err:
        row_db.execute(query)
    with pytest.raises(ExecutionError) as vec_err:
        vec_db.execute(query)
    assert str(row_err.value) == str(vec_err.value)


@pytest.mark.parametrize("dialect", ["sql", "sqlpp"])
def test_explain_reports_engine(engine_pairs, dialect):
    (row_db, _, _, _), (vec_db, _, _, _) = engine_pairs[dialect]
    query = f"SELECT t.ten FROM {NAMESPACE}.{DATASET} t WHERE t.ten = 3"
    assert "== execution engine ==" in row_db.explain(query)
    assert "row" in row_db.explain(query).rsplit("== execution engine ==", 1)[1]
    vec_section = vec_db.explain(query).rsplit("== execution engine ==", 1)[1]
    assert "vector" in vec_section
    assert "VecScan" in vec_section


def test_vector_stats_count_batches(engine_pairs):
    (_, _, _, _), (vec_db, _, _, _) = engine_pairs["sql"]
    result = vec_db.execute(f"SELECT COUNT(*) AS n FROM {NAMESPACE}.{DATASET} t WHERE t.ten >= 0")
    assert result.stats.exec_engine == "vector"
    assert result.stats.batches >= 1
    assert result.stats.heap_fetches == NUM_RECORDS


def test_env_variable_selects_engine(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC", "vector")
    db = SQLDatabase()
    assert db.exec_engine == "vector"
    monkeypatch.setenv("REPRO_EXEC", "bogus")
    assert SQLDatabase().exec_engine == "row"
    monkeypatch.delenv("REPRO_EXEC")
    assert SQLDatabase().exec_engine == "row"
    with pytest.raises(ValueError):
        SQLDatabase(exec_engine="simd")
