"""Cluster-layer streaming: k-way merge, backpressure, LIMIT pushdown.

Scatter-gather with ``stream=True`` must return the same records as the
materialized path on both dispatchers, ship at most LIMIT rows per shard
for un-aggregated record streams, and bound how far any shard's producer
can run ahead of the coordinator (per-shard queue backpressure).
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import GreenplumCluster, MongoDBCluster
from repro.cluster.dispatch import SerialDispatcher, ThreadPoolDispatcher
from repro.errors import ReproError
from repro.wisconsin import wisconsin_records

RECORDS = 400
SHARDS = 3


def _greenplum(dispatch, budget=None):
    gp = GreenplumCluster(
        SHARDS, query_prep_overhead=0.0, dispatch=dispatch, memory_budget=budget
    )
    gp.create_table("B.data", primary_key="unique2")
    gp.insert("B.data", wisconsin_records(RECORDS), shard_key="unique1")
    return gp


def _mongo(dispatch, budget=None):
    mg = MongoDBCluster(
        SHARDS, query_prep_overhead=0.0, dispatch=dispatch, memory_budget=budget
    )
    mg.create_collection("data")
    mg.insert_many("data", wisconsin_records(RECORDS), shard_key="unique1")
    return mg


@pytest.fixture(scope="module", params=["serial", "threads"])
def greenplum(request):
    return _greenplum(request.param)


SQL_QUERIES = [
    # ordered_limit: bounded k-way heap merge
    'SELECT * FROM B.data t ORDER BY t."ten", t."unique2" DESC LIMIT 25',
    # concat: plain chain of shard streams
    'SELECT t."unique2", t."two" FROM B.data t WHERE t."two" = 0',
    # blocking kinds: materialize fallback, still answer-identical
    'SELECT t."ten" AS k, COUNT(*) AS n FROM B.data t GROUP BY t."ten"',
    'SELECT COUNT(*) AS n FROM B.data t',
]


class TestStreamedScatterGatherParity:
    def test_sql_queries(self, greenplum):
        for query in SQL_QUERIES:
            expected = greenplum.execute(query).records
            streamed = list(greenplum.execute(query, stream=True).iter_records())
            assert streamed == expected, query

    def test_mongo_pipelines(self):
        for dispatch in ("serial", "threads"):
            mg = _mongo(dispatch)
            pipelines = [
                [{"$sort": {"ten": 1, "unique2": -1}}, {"$limit": 25}],
                [{"$match": {"two": 0}}],
                [{"$group": {"_id": {"ten": "$ten"}, "n": {"$sum": 1}}}],
            ]
            for pipeline in pipelines:
                expected = mg.aggregate("data", pipeline).records
                streamed = list(
                    mg.aggregate("data", pipeline, stream=True).iter_records()
                )
                assert streamed == expected, (dispatch, pipeline)

    def test_streamed_stats_fold_shard_memory(self):
        gp = _greenplum("threads", budget="4k")
        # A full sort (no LIMIT) so the shards' SortOps must spill; a
        # LIMIT would plan a bounded top-k that never exceeds the budget.
        query = 'SELECT * FROM B.data t ORDER BY t."ten", t."unique2" DESC'
        result = gp.execute(query, stream=True)
        records = list(result.iter_records())
        assert len(records) == RECORDS
        assert result.stats.peak_mem_bytes > 0
        assert result.stats.spill_bytes > 0


class TestLimitPushdown:
    """Un-aggregated streams ship at most LIMIT rows per shard."""

    K = 7

    def _shipped_per_shard(self, cluster, run_query):
        shipped: list[int] = []
        originals = [node.execute for node in cluster.nodes]
        for node in cluster.nodes:
            original = node.execute

            def counting(query_text, *, _original=original, **kwargs):
                result = _original(query_text)  # materialized: countable
                shipped.append(len(result.records))
                return result

            node.execute = counting
        try:
            records = run_query()
        finally:
            for node, original in zip(cluster.nodes, originals):
                node.execute = original
        return shipped, records

    @pytest.mark.parametrize("stream", [False, True])
    def test_ordered_limit_ships_k_rows_per_shard(self, stream):
        gp = _greenplum("serial")
        query = f'SELECT * FROM B.data t ORDER BY t."unique1" LIMIT {self.K}'

        def run():
            result = gp.execute(query, stream=stream)
            return list(result.iter_records())

        shipped, records = self._shipped_per_shard(gp, run)
        assert len(shipped) == SHARDS
        assert all(count <= self.K for count in shipped), shipped
        assert sum(shipped) <= self.K * SHARDS
        # and the merged answer is still the true global top-k
        assert [r["unique1"] for r in records] == list(range(self.K))

    def test_unordered_limit_ships_k_rows_per_shard(self):
        gp = _greenplum("serial")
        query = f"SELECT * FROM B.data t LIMIT {self.K}"

        def run():
            return list(gp.execute(query, stream=True).iter_records())

        shipped, records = self._shipped_per_shard(gp, run)
        assert all(count <= self.K for count in shipped), shipped
        assert len(records) == self.K


class TestStreamShards:
    class TrackedSource:
        """An iterable that counts records produced and close() calls."""

        def __init__(self, n: int):
            self.n = n
            self.produced = 0
            self.closed = False

        def __iter__(self):
            for i in range(self.n):
                self.produced += 1
                yield {"i": i}

        def close(self):
            self.closed = True

    def test_serial_dispatcher_is_passthrough(self):
        streams = SerialDispatcher().stream_shards([[1, 2], [3]])
        assert [list(s) for s in streams] == [[1, 2], [3]]

    def test_queue_size_validation(self):
        dispatcher = ThreadPoolDispatcher(max_workers=2)
        try:
            with pytest.raises(ReproError) as exc:
                dispatcher.stream_shards([[1], [2]], queue_size=0)
            assert "0" in str(exc.value)
        finally:
            dispatcher.close()

    def test_backpressure_bounds_producer_lead(self):
        dispatcher = ThreadPoolDispatcher(max_workers=4)
        queue_size = 4
        sources = [self.TrackedSource(200), self.TrackedSource(200)]
        try:
            streams = dispatcher.stream_shards(sources, queue_size=queue_size)
            # Consume nothing: producers must stall at the queue bound
            # (queue_size buffered + one record held by a blocked put).
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                counts = [source.produced for source in sources]
                time.sleep(0.02)
                if counts == [source.produced for source in sources] and all(
                    count > 0 for count in counts
                ):
                    break
            for source in sources:
                assert 0 < source.produced <= queue_size + 1
            # Draining everything releases the backpressure.
            for stream, source in zip(streams, sources):
                assert list(stream) == [{"i": i} for i in range(200)]
                assert source.produced == 200
        finally:
            dispatcher.close()

    def test_abandoned_consumer_closes_producer_source(self):
        dispatcher = ThreadPoolDispatcher(max_workers=4)
        sources = [self.TrackedSource(10_000), self.TrackedSource(10_000)]
        try:
            streams = dispatcher.stream_shards(sources, queue_size=8)
            first = streams[0]
            assert next(first) == {"i": 0}
            first.close()  # LIMIT satisfied: abandon the shard mid-stream
            assert sources[0].closed
            assert sources[0].produced < 10_000
            # the other shard is unaffected and drains fully
            assert sum(1 for _ in streams[1]) == 10_000
        finally:
            dispatcher.close()

    def test_producer_error_reaches_consumer(self):
        def broken():
            yield {"i": 0}
            raise ValueError("shard exploded")

        dispatcher = ThreadPoolDispatcher(max_workers=2)
        try:
            streams = dispatcher.stream_shards([broken(), iter([{"i": 1}])])
            assert next(streams[0]) == {"i": 0}
            with pytest.raises(ValueError, match="shard exploded"):
                next(streams[0])
        finally:
            dispatcher.close()
