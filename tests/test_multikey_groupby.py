"""Multi-key group-by across the eager baseline and every backend."""

from __future__ import annotations

import pytest

from repro import PolyFrame
from repro.eager import frame_from_records
from repro.errors import RewriteError


@pytest.fixture(scope="module")
def frames(all_connectors):
    return {
        name: PolyFrame("Bench", "data", connector)
        for name, connector in all_connectors.items()
    }


def expected_groups(wisconsin, value_column):
    out: dict = {}
    for record in wisconsin:
        key = (record["two"], record["four"])
        out[key] = max(out.get(key, -1), record[value_column])
    return out


class TestEagerMultiKey:
    def test_group_max(self, wisconsin):
        frame = frame_from_records(wisconsin)
        result = frame.groupby(["two", "four"])["ten"].agg("max")
        assert result.columns == ["two", "four", "max_ten"]
        got = {
            (r["two"], r["four"]): r["max_ten"] for r in result.to_records()
        }
        assert got == expected_groups(wisconsin, "ten")

    def test_absent_any_key_dropped(self):
        frame = frame_from_records(
            [{"a": 1, "b": None, "v": 1}, {"a": 1, "b": 2, "v": 3}]
        )
        result = frame.groupby(["a", "b"])["v"].agg("count")
        assert len(result) == 1

    def test_missing_key_column(self, wisconsin):
        frame = frame_from_records(wisconsin[:5])
        with pytest.raises(KeyError):
            frame.groupby(["two", "nope"])


class TestPolyFrameMultiKey:
    @pytest.mark.parametrize("backend", ["asterixdb", "postgres", "mongodb", "neo4j"])
    def test_group_max_agrees(self, frames, backend, wisconsin):
        frame = frames[backend]
        result = frame.groupby(["two", "four"])["ten"].agg("max").collect()
        got = {
            (r["two"], r["four"]): r["max_ten"] for r in result.to_records()
        }
        assert got == expected_groups(wisconsin, "ten"), backend

    def test_empty_keys_rejected(self, frames):
        with pytest.raises(RewriteError):
            frames["postgres"].groupby([])

    def test_single_key_still_uses_q8(self, frames):
        frame = frames["postgres"]
        query = frame.groupby("two")["four"].agg("max").query
        assert query.count("GROUP BY") == 1
        assert '"two"' in query and '"four"' not in query.split("GROUP BY")[1]
