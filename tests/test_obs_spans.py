"""Span-tree shape tests for the cross-layer trace instrumentation.

Every Table III expression, on every backend, must produce root ``action``
spans whose children tell the whole story: plan compilation, resilient
dispatch (one ``attempt`` child per execution try), and engine execution
with per-operator timing.  See ``docs/observability.md``.
"""

from __future__ import annotations

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.obs import NOOP_SPAN, Tracer, get_tracer, set_global_tracer
from repro.obs.trace import _reset_global_tracer
from repro.resilience import FaultInjector, RetryPolicy

BACKENDS = ("asterixdb", "postgres", "mongodb", "neo4j")


def fresh_connector(backend: str, request, **resilience):
    """A new connector (own tracer, logs, cache) over the session engine."""
    db = request.getfixturevalue(backend)
    cls = {
        "asterixdb": AsterixDBConnector,
        "postgres": PostgresConnector,
        "mongodb": MongoDBConnector,
        "neo4j": Neo4jConnector,
    }[backend]
    return cls(db, **resilience)


def traced_frames(backend: str, request, **resilience):
    connector = fresh_connector(backend, request, **resilience)
    tracer = Tracer()
    connector.set_tracer(tracer)
    df = PolyFrame("Bench", "data", connector)
    df2 = PolyFrame("Bench", "data2", connector)
    return tracer, df, df2


def assert_action_tree(root, *, backend_name: str) -> None:
    """One action span: compile -> dispatch -> attempt -> execute."""
    assert root.name == "action"
    assert root.attributes["backend"] == backend_name
    assert "op" in root.attributes
    compiles = root.find("compile")
    dispatches = root.find("dispatch")
    assert compiles, f"action {root.attributes} has no compile span"
    assert dispatches, f"action {root.attributes} has no dispatch span"
    for compile_span in compiles:
        assert "cache_hit" in compile_span.attributes
    for dispatch in dispatches:
        attempts = dispatch.find("attempt")
        assert attempts, "dispatch span has no attempt children"
        assert dispatch.attributes["outcome"] in ("ok", "partial")
        assert dispatch.attributes["attempts"] == len(attempts)
        # The successful (last) attempt ran the engine.
        executes = attempts[-1].find("execute")
        assert len(executes) == 1
        for execute in executes:
            assert execute.attributes["rows"] >= 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_expressions_produce_action_span_trees(backend, request):
    """All 13 Table III expressions trace end-to-end on every backend."""
    tracer, df, df2 = traced_frames(backend, request)
    params = benchmark_params()
    api = DataFrameAPI()
    assert len(EXPRESSIONS) == 13
    for expr in EXPRESSIONS:
        mark = len(tracer.spans)
        expr.run(df, df2, params, api)
        roots = tracer.spans[mark:]
        assert roots, f"expression {expr.id} recorded no spans on {backend}"
        for root in roots:
            assert_action_tree(root, backend_name=df.connector.name)


@pytest.mark.parametrize("backend", BACKENDS)
def test_single_query_action_has_exactly_one_root(backend, request):
    """A one-query action records exactly one root span, nothing stray."""
    tracer, df, _ = traced_frames(backend, request)
    len(df)
    assert len(tracer.spans) == 1
    root = tracer.spans[0]
    assert root.attributes["op"] == "len"
    assert len(root.find("dispatch")) == 1
    assert root.duration_ms >= sum(c.duration_ms for c in root.find("dispatch"))


def test_operator_spans_ride_under_execute(request):
    """Engine operators appear as synthetic spans below the execute span."""
    tracer, df, _ = traced_frames("postgres", request)
    df[df["ten"] < 5].head()
    (root,) = tracer.spans
    execute = root.find("dispatch")[0].find("attempt")[0].find("execute")[0]
    operators = [s for s in execute.walk() if s.attributes.get("kind") == "operator"]
    assert operators, "no operator spans attached to the execute span"
    for op in operators:
        assert op.attributes["rows_out"] >= 0
        assert op.duration_ms >= 0.0


def test_retries_appear_as_attempt_child_spans(request, postgres):
    """Seeded faults: each retry is a visible attempt span with its error."""
    injector = FaultInjector(seed=11)
    injector.fail_first(2, backend="PostgresConnector")
    connector = PostgresConnector(
        postgres,
        retry_policy=RetryPolicy(max_attempts=3, seed=11, sleep=lambda s: None),
        fault_injector=injector,
    )
    tracer = Tracer()
    connector.set_tracer(tracer)
    df = PolyFrame("Bench", "data", connector)
    assert len(df) == 600
    (root,) = tracer.spans
    (dispatch,) = root.find("dispatch")
    attempts = dispatch.find("attempt")
    assert [a.attributes["number"] for a in attempts] == [1, 2, 3]
    for failed in attempts[:2]:
        assert failed.attributes["retried"] is True
        assert "TransientBackendError" in failed.attributes["error"]
        assert not failed.find("execute")
    assert attempts[2].find("execute")
    assert dispatch.attributes["outcome"] == "ok"
    assert dispatch.attributes["attempts"] == 3


def test_connector_tracer_wins_over_global(request, postgres):
    connector = PostgresConnector(postgres)
    mine = Tracer()
    other = Tracer()
    connector.set_tracer(mine)
    set_global_tracer(other)
    try:
        PolyFrame("Bench", "data", connector).head(3)
    finally:
        set_global_tracer(None)
        _reset_global_tracer()
    assert mine.spans and not other.spans


def test_disabled_tracing_records_nothing(request, postgres, monkeypatch):
    """No tracer configured: the action path emits zero spans."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    set_global_tracer(None)
    try:
        assert get_tracer() is None
        connector = PostgresConnector(postgres)
        assert connector.tracer is None
        df = PolyFrame("Bench", "data", connector)
        assert len(df[df["ten"] < 5].head(3)) == 3
    finally:
        _reset_global_tracer()


def test_disabled_tracer_hands_out_noop_span(request, postgres):
    tracer = Tracer(enabled=False)
    assert tracer.span("anything") is NOOP_SPAN
    connector = PostgresConnector(postgres)
    connector.set_tracer(tracer)
    PolyFrame("Bench", "data", connector).head(2)
    assert tracer.spans == []


@pytest.mark.parametrize("mode", ["serial", "threads"])
def test_cluster_shard_spans_nest_under_attempt(mode):
    """Shard spans stay nested under the action tree in both dispatch modes.

    The span stack is thread-local, so without context propagation the
    thread dispatcher's shard spans would surface as stray roots instead
    of children of the connector's attempt span.
    """
    from repro.cluster import GreenplumCluster
    from repro.wisconsin import wisconsin_records

    cluster = GreenplumCluster(4, query_prep_overhead=0.0, dispatch=mode)
    cluster.create_table("B.data", primary_key="unique2")
    cluster.insert("B.data", wisconsin_records(80), shard_key="unique1")
    connector = PostgresConnector(cluster)
    tracer = Tracer()
    connector.set_tracer(tracer)
    df = PolyFrame("B", "data", connector)
    assert len(df) == 80
    assert len(tracer.spans) == 1, "worker threads leaked stray root spans"
    (root,) = tracer.spans
    (dispatch,) = root.find("dispatch")
    assert dispatch.attributes["dispatch_mode"] == mode
    (attempt,) = dispatch.find("attempt")
    shards = attempt.find("shard")
    assert sorted(s.attributes["shard"] for s in shards) == [0, 1, 2, 3]
    for shard in shards:
        (execute,) = shard.find("execute")
        assert execute.attributes["rows"] >= 0
