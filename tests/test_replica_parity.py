"""Satellite: failover and hedging never change answers.

Runs all 13 Table III expressions on every sharded backend under three
scenarios — healthy, permanent node outage (failover), and a slow node
(hedged execution) — and asserts the results are byte-identical.  The
replication layer may move reads between replicas, but a query's answer
must not depend on which copy served it.
"""

from __future__ import annotations

import pytest

from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.bench.systems import build_cluster_systems
from repro.cluster.replica import HedgePolicy
from repro.errors import UnsupportedOperationError
from repro.resilience import FaultInjector, RetryPolicy, no_sleep

NUM_NODES = 3
NUM_RECORDS = 150

SCENARIOS = ("healthy", "node_down", "hedged")


def canonical(value):
    """Byte-comparable form of an expression result."""
    value = DataFrameAPI().materialize(value)
    if hasattr(value, "to_records"):
        return repr(value.to_records())
    return repr(value)


def run_scenario(scenario: str) -> tuple[dict, dict]:
    injector = FaultInjector(sleep=no_sleep)
    hedge = None
    if scenario == "node_down":
        injector.node_down(1)
    elif scenario == "hedged":
        injector.slow_node(1, 0.5)
        hedge = HedgePolicy(threshold_seconds=0.01)
    systems = build_cluster_systems(
        NUM_NODES,
        NUM_RECORDS,
        replication_factor=2,
        fault_injector=injector,
        retry_policy=RetryPolicy(3, sleep=no_sleep),
        hedge=hedge,
    )
    params = benchmark_params()
    api = DataFrameAPI()
    answers: dict[tuple[str, int], str] = {}
    activity: dict[str, tuple[int, int]] = {}
    for name, system in systems.items():
        df, df2 = system.create_frames()
        for expr in EXPRESSIONS:
            try:
                answers[(name, expr.id)] = canonical(expr.run(df, df2, params, api))
            except UnsupportedOperationError:
                answers[(name, expr.id)] = "unsupported"
        failovers = sum(r.failovers for r in system.connector.send_log)
        hedges = sum(r.hedges for r in system.connector.send_log)
        activity[name] = (failovers, hedges)
    return answers, activity


@pytest.fixture(scope="module")
def scenario_answers():
    return {scenario: run_scenario(scenario) for scenario in SCENARIOS}


def test_failover_answers_match_healthy(scenario_answers):
    healthy, _ = scenario_answers["healthy"]
    chaos, activity = scenario_answers["node_down"]
    assert chaos == healthy
    # And it wasn't vacuous: every backend actually failed over.
    for name, (failovers, _) in activity.items():
        assert failovers >= 1, f"{name} never failed over"


def test_hedged_answers_match_healthy(scenario_answers):
    healthy, _ = scenario_answers["healthy"]
    hedged, activity = scenario_answers["hedged"]
    assert hedged == healthy
    for name, (_, hedges) in activity.items():
        assert hedges >= 1, f"{name} never hedged"


def test_healthy_run_answers_every_expression(scenario_answers):
    healthy, activity = scenario_answers["healthy"]
    # The only unsupported cell is the sharded-MongoDB join (expression 12).
    unsupported = {k for k, v in healthy.items() if v == "unsupported"}
    assert unsupported == {("PolyFrame-MongoDB", 12)}
    for name, (failovers, hedges) in activity.items():
        assert failovers == 0 and hedges == 0, f"{name} moved reads while healthy"
