"""Replication layer tests: placement, health, failover, hedging, quorum.

The tentpole guarantee under test: with ``replication_factor=2`` and a
seeded permanent single-node outage, every query completes non-partial
with results identical to the healthy run (``QueryStats.failovers >= 1``,
``failovers_total`` metric and ``failover`` spans emitted) — while the
same seed with R=1 still raises :class:`ShardFailureError`, so nothing
changed silently for single-copy clusters.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PolyFrame, PostgresConnector
from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.cluster import GreenplumCluster
from repro.cluster.base import (
    round_robin_shards,
    shard_records,
)
from repro.cluster.replica import (
    DOWN,
    SUSPECT,
    UP,
    HedgePolicy,
    NodeHealth,
    NodeHealthBoard,
    ReplicaSet,
    ReplicaStore,
    records_checksum,
    resolve_replication_factor,
)
from repro.errors import (
    ReplicaDivergenceError,
    ReproError,
    ShardFailureError,
    TransientBackendError,
)
from repro.obs import Tracer, metrics, set_global_tracer
from repro.obs.trace import _reset_global_tracer
from repro.resilience import (
    NODE_DOWN,
    CircuitBreaker,
    FaultInjector,
    FaultRule,
    RetryPolicy,
    cluster_resilience,
    no_sleep,
)
from repro.resilience.faults import (
    ENV_FAULT_RATE,
    ENV_NODE_DOWN,
    _reset_global_resilience,
    global_resilience,
)
from repro.wisconsin import loaders, wisconsin_records

NUM_NODES = 4
NUM_RECORDS = 120
RECORDS = wisconsin_records(NUM_RECORDS)


def fast_policy(max_attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(max_attempts, sleep=no_sleep)


def make_cluster(
    injector=None,
    *,
    replication_factor=2,
    num_nodes=NUM_NODES,
    allow_partial=False,
    hedge=None,
    quorum_reads=False,
    breaker_factory=None,
):
    cluster = GreenplumCluster(
        num_nodes,
        retry_policy=fast_policy(),
        fault_injector=injector if injector is not None else FaultInjector(sleep=no_sleep),
        allow_partial=allow_partial,
        replication_factor=replication_factor,
        hedge=hedge,
        quorum_reads=quorum_reads,
        breaker_factory=breaker_factory,
    )
    for dataset in ("Bench.data", "Bench.data2"):
        cluster.create_table(dataset, primary_key=loaders.PRIMARY_KEY)
        cluster.insert(dataset, RECORDS, shard_key="unique1")
    return cluster


COUNT_QUERY = "SELECT COUNT(*) FROM Bench.data"


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
class TestReplicaSet:
    def test_chained_declustering_placement(self):
        rs = ReplicaSet(4, 4, 2)
        assert rs.replicas_for(0) == (0, 1)
        assert rs.replicas_for(3) == (3, 0)  # wraps around
        assert rs.primary_for(2) == 2
        assert rs.placement() == {0: (0, 1), 1: (1, 2), 2: (2, 3), 3: (3, 0)}

    def test_single_node_loss_leaves_every_shard_covered(self):
        rs = ReplicaSet(5, 5, 2)
        for dead in range(5):
            for shard in range(5):
                survivors = [n for n in rs.replicas_for(shard) if n != dead]
                assert survivors, f"shard {shard} uncovered with node {dead} dead"

    def test_shards_on_node(self):
        rs = ReplicaSet(4, 4, 2)
        assert rs.shards_on(0) == (0, 3)  # its primary plus its neighbour's backup
        assert rs.shards_on(1) == (0, 1)

    def test_replication_factor_one_is_the_seed_layout(self):
        rs = ReplicaSet(3, 3, 1)
        assert rs.placement() == {0: (0,), 1: (1,), 2: (2,)}

    def test_validation(self):
        with pytest.raises(ReproError):
            ReplicaSet(0, 3, 1)
        with pytest.raises(ReproError):
            ReplicaSet(3, 0, 1)
        with pytest.raises(ReproError):
            ReplicaSet(3, 3, 0)
        with pytest.raises(ReproError, match="exceeds"):
            ReplicaSet(3, 3, 4)
        with pytest.raises(ReproError, match="out of range"):
            ReplicaSet(3, 3, 2).replicas_for(3)
        with pytest.raises(ReproError, match="out of range"):
            ReplicaSet(3, 3, 2).shards_on(3)


class TestResolveReplicationFactor:
    def test_defaults_to_single_copy(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICATION", raising=False)
        assert resolve_replication_factor(None, 4) == 1

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICATION", "2")
        assert resolve_replication_factor(None, 4) == 2

    def test_clamped_to_node_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICATION", "3")
        assert resolve_replication_factor(None, 2) == 2
        assert resolve_replication_factor(5, 3) == 3

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICATION", "3")
        assert resolve_replication_factor(1, 4) == 1

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICATION", "two")
        assert resolve_replication_factor(None, 4) == 1

    def test_invalid_request_raises(self):
        with pytest.raises(ReproError):
            resolve_replication_factor(0, 4)


# ----------------------------------------------------------------------
# Node health
# ----------------------------------------------------------------------
class TestNodeHealth:
    def test_state_transitions(self):
        health = NodeHealth(0, suspect_after=1, down_after=3)
        assert health.state == UP
        health.record_failure()
        assert health.state == SUSPECT
        health.record_failure()
        health.record_failure()
        assert health.state == DOWN
        health.record_success(0.01)
        assert health.state == UP  # any success resets the streak

    def test_ewma_latency(self):
        health = NodeHealth(0, alpha=0.5)
        assert health.ewma_latency is None
        health.record_success(0.1)
        assert health.ewma_latency == pytest.approx(0.1)
        health.record_success(0.3)
        assert health.ewma_latency == pytest.approx(0.5 * 0.3 + 0.5 * 0.1)
        assert health.latency_samples == 2

    def test_validation(self):
        with pytest.raises(ReproError):
            NodeHealth(0, alpha=0.0)
        with pytest.raises(ReproError):
            NodeHealth(0, suspect_after=3, down_after=2)

    def test_board_orders_replicas_by_health(self):
        board = NodeHealthBoard(3)
        for _ in range(3):
            board.record_failure(1)
        board.record_failure(2)
        # node1 is down, node2 suspect, node0 up.
        assert board.order((1, 2, 0)) == (0, 2, 1)
        # Stable among equals: placement order is preserved.
        assert board.order((2, 0, 1)) == (0, 2, 1) or board.order((0, 2, 1))[0] == 0

    def test_nodes_down_gauge_moves_both_ways(self):
        board = NodeHealthBoard(2, cluster_name="gauge-test[2]")
        before = metrics.gauge_value("nodes_down", cluster="gauge-test[2]")
        for _ in range(3):
            board.record_failure(1)
        assert board.down_nodes() == (1,)
        assert metrics.gauge_value("nodes_down", cluster="gauge-test[2]") == before + 1
        board.record_success(1, 0.01)
        assert metrics.gauge_value("nodes_down", cluster="gauge-test[2]") == before
        assert board.down_nodes() == ()

    def test_per_node_breakers(self):
        breakers = {
            n: CircuitBreaker(min_calls=1, failure_rate_threshold=0.5, name=f"n{n}")
            for n in range(2)
        }
        board = NodeHealthBoard(2, breaker_factory=breakers.get)
        board.record_failure(1)
        board.record_failure(1)
        assert board.allow(0)
        assert not board.allow(1)  # node1's breaker opened; node0 untouched


class TestHedgePolicy:
    def test_disabled_never_hedges(self):
        health = NodeHealth(0)
        health.record_success(0.1)
        assert HedgePolicy(enabled=False).threshold_for(health) is None

    def test_fixed_threshold_override(self):
        assert HedgePolicy(threshold_seconds=0.25).threshold_for(NodeHealth(0)) == 0.25

    def test_adaptive_threshold_needs_samples(self):
        policy = HedgePolicy(latency_multiplier=3.0, min_samples=3)
        health = NodeHealth(0, alpha=1.0)
        health.record_success(0.1)
        health.record_success(0.1)
        assert policy.threshold_for(health) is None  # cold estimate: no hedging
        health.record_success(0.1)
        assert policy.threshold_for(health) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ReproError):
            HedgePolicy(latency_multiplier=1.0)
        with pytest.raises(ReproError):
            HedgePolicy(threshold_seconds=-1.0)


class TestReplicaStore:
    def test_placement_and_views(self):
        rs = ReplicaSet(3, 3, 2)
        store = ReplicaStore(rs, lambda shard, node: f"engine-s{shard}n{node}")
        assert store.engines_for(0) == ("engine-s0n0", "engine-s0n1")
        assert store.primaries() == ["engine-s0n0", "engine-s1n1", "engine-s2n2"]
        assert len(store.all_engines()) == 6  # shards x R distinct copies
        assert store.engine(2, 0) == "engine-s2n0"

    def test_missing_replica_is_an_error(self):
        store = ReplicaStore(ReplicaSet(3, 3, 1), lambda s, n: (s, n))
        with pytest.raises(ReproError, match="no replica"):
            store.engine(0, 1)


def test_records_checksum_is_order_and_content_sensitive():
    a = [{"k": 1}, {"k": 2}]
    assert records_checksum(a) == records_checksum([{"k": 1}, {"k": 2}])
    assert records_checksum(a) != records_checksum([{"k": 2}, {"k": 1}])
    assert records_checksum(a) != records_checksum([{"k": 1}, {"k": 3}])


# ----------------------------------------------------------------------
# Satellite: sharding helpers validate shard counts
# ----------------------------------------------------------------------
class TestShardCountValidation:
    def test_round_robin_rejects_zero_shards(self):
        with pytest.raises(ReproError, match="at least one shard"):
            round_robin_shards([{"k": 1}], 0)

    def test_shard_records_rejects_zero_shards(self):
        with pytest.raises(ReproError, match="at least one shard"):
            shard_records([{"k": 1}], 0, "k")
        with pytest.raises(ReproError, match="at least one shard"):
            shard_records([{"k": 1}], -1, None)


# ----------------------------------------------------------------------
# Node-level fault kinds
# ----------------------------------------------------------------------
class TestNodeFaults:
    def test_node_down_matches_suffix_exactly(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(1)
        injector.before_request("c[12]#shard4@node10")  # node 10 is NOT node 1
        with pytest.raises(TransientBackendError, match="node1"):
            injector.before_request("c[12]#shard1@node1")

    def test_node_down_is_sticky_until_restored(self):
        injector = FaultInjector(sleep=no_sleep)
        rule = injector.node_down(0)
        for _ in range(5):
            with pytest.raises(TransientBackendError):
                injector.before_request("c#shard0@node0")
        injector.restore(rule)
        assert injector.before_request("c#shard0@node0") == 0.0

    def test_slow_node_reports_injected_latency(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.slow_node(2, 0.25)
        assert injector.before_request("c#shard2@node2") == pytest.approx(0.25)
        assert injector.before_request("c#shard2@node3") == 0.0

    def test_node_rules_require_a_node(self):
        with pytest.raises(ValueError, match="need a node"):
            FaultRule(kind=NODE_DOWN)

    def test_node_rule_scoped_to_backend(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(0, backend="greenplum")
        injector.before_request("mongodb-cluster[2]#shard0@node0")  # other backend
        with pytest.raises(TransientBackendError):
            injector.before_request("greenplum[2]#shard0@node0")


class TestEnvResilience:
    @pytest.fixture(autouse=True)
    def fresh_global(self):
        _reset_global_resilience()
        yield
        _reset_global_resilience()

    def test_node_down_env_builds_injector(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_RATE, raising=False)
        monkeypatch.setenv(ENV_NODE_DOWN, "1, 3")
        injector, policy = global_resilience()
        assert injector is not None and policy is not None
        injector.before_request("c#shard0@node0")
        with pytest.raises(TransientBackendError):
            injector.before_request("c#shard1@node1")
        with pytest.raises(TransientBackendError):
            injector.before_request("c#shard3@node3")

    def test_cluster_resilience_prefers_explicit(self, monkeypatch):
        monkeypatch.setenv(ENV_NODE_DOWN, "1")
        mine = FaultInjector(sleep=no_sleep)
        policy = fast_policy()
        assert cluster_resilience(mine, policy) == (mine, policy)
        injector, fallback = cluster_resilience(None, None)
        assert injector is not None and fallback is not None

    def test_no_env_means_no_injection(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_RATE, raising=False)
        monkeypatch.delenv(ENV_NODE_DOWN, raising=False)
        assert global_resilience() == (None, None)
        assert cluster_resilience(None, None) == (None, None)


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------
class TestFailover:
    def test_node_outage_fails_over_and_answers_completely(self):
        healthy = make_cluster().execute(COUNT_QUERY)

        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(1)
        before = metrics.counter_value("failovers_total")
        result = make_cluster(injector).execute(COUNT_QUERY)

        assert result.records == healthy.records
        assert not result.partial
        assert result.stats.failovers >= 1
        assert result.stats.failed_shards == 0
        assert metrics.counter_value("failovers_total") > before
        # Shard 1's primary is dead; its backup on node 2 served.
        assert result.served_by[1] == 2
        assert 1 not in result.served_by

    def test_failover_spans_are_emitted(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(1)
        cluster = make_cluster(injector)
        tracer = Tracer()
        set_global_tracer(tracer)
        try:
            cluster.execute(COUNT_QUERY)
        finally:
            _reset_global_tracer()
        failovers = [
            span
            for root in tracer.spans
            for span in root.walk()
            if span.name == "failover"
        ]
        assert failovers, "no failover spans recorded"
        assert failovers[0].attributes["to_node"] == 2

    def test_same_outage_with_single_copy_still_fails(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(1)
        cluster = make_cluster(injector, replication_factor=1)
        with pytest.raises(ShardFailureError) as excinfo:
            cluster.execute(COUNT_QUERY)
        assert excinfo.value.shard == 1
        assert excinfo.value.attempts == 3  # the full single-replica budget

    def test_partial_only_after_every_replica_is_exhausted(self):
        # Nodes 1 and 2 dead kills BOTH copies of shard 1 (replicas 1, 2).
        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(1)
        injector.node_down(2)
        cluster = make_cluster(injector, allow_partial=True)
        result = cluster.execute(COUNT_QUERY)
        assert result.partial
        assert result.stats.failed_shards == 1
        assert result.served_by[1] == -1  # the dropped shard
        # Shards 0 and 2 still answered via their surviving replica.
        assert result.served_by[0] == 0 and result.served_by[2] == 3

        without_partial = make_cluster(injector_copy(), allow_partial=False)
        with pytest.raises(ShardFailureError, match="all 2 replicas"):
            without_partial.execute(COUNT_QUERY)

    def test_open_breaker_skips_straight_to_replica(self):
        breakers = {
            n: CircuitBreaker(min_calls=1, failure_rate_threshold=0.5, name=f"gp-n{n}")
            for n in range(NUM_NODES)
        }
        cluster = make_cluster(breaker_factory=breakers.get)
        breakers[0].record_failure()
        breakers[0].record_failure()  # node0 now fails fast
        result = cluster.execute(COUNT_QUERY)
        assert not result.partial
        assert result.stats.failovers >= 1
        assert result.served_by[0] == 1  # shard 0 served by its backup

    def test_health_ranking_avoids_known_down_nodes(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(1)
        cluster = make_cluster(injector)
        first = cluster.execute(COUNT_QUERY)
        # After the first query node 1 is marked down; the second query
        # goes straight to the backup with no doomed attempts.
        second = cluster.execute(COUNT_QUERY)
        assert cluster.health.node(1).state == DOWN
        assert second.records == first.records
        assert second.shard_attempts[1] <= first.shard_attempts[1]


def injector_copy() -> FaultInjector:
    injector = FaultInjector(sleep=no_sleep)
    injector.node_down(1)
    injector.node_down(2)
    return injector


# ----------------------------------------------------------------------
# Hedged requests
# ----------------------------------------------------------------------
class TestHedging:
    def test_slow_node_is_hedged_and_loses(self):
        healthy = make_cluster().execute(COUNT_QUERY)
        injector = FaultInjector(sleep=no_sleep)
        injector.slow_node(2, 0.5)
        before_hedges = metrics.counter_value("hedges_total")
        before_wins = metrics.counter_value("hedge_wins_total")
        cluster = make_cluster(injector, hedge=HedgePolicy(threshold_seconds=0.01))
        result = cluster.execute(COUNT_QUERY)

        assert result.records == healthy.records
        assert result.stats.hedges >= 1
        assert result.stats.hedge_wins >= 1
        assert metrics.counter_value("hedges_total") > before_hedges
        assert metrics.counter_value("hedge_wins_total") > before_wins
        # Shard 2's slow primary lost the race to its backup on node 3.
        assert result.served_by[2] == 3

    def test_hedge_spans_carry_the_winner(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.slow_node(2, 0.5)
        cluster = make_cluster(injector, hedge=HedgePolicy(threshold_seconds=0.01))
        tracer = Tracer()
        set_global_tracer(tracer)
        try:
            cluster.execute(COUNT_QUERY)
        finally:
            _reset_global_tracer()
        hedges = [
            span
            for root in tracer.spans
            for span in root.walk()
            if span.name == "hedge"
        ]
        assert hedges
        assert any(span.attributes["win"] for span in hedges)

    def test_hedging_disabled_by_policy(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.slow_node(2, 0.5)
        cluster = make_cluster(injector, hedge=HedgePolicy(enabled=False))
        result = cluster.execute(COUNT_QUERY)
        assert result.stats.hedges == 0
        assert result.served_by[2] == 2  # slow primary still serves


# ----------------------------------------------------------------------
# Quorum-checked reads
# ----------------------------------------------------------------------
class TestQuorumReads:
    def test_healthy_quorum_agrees(self):
        cluster = make_cluster(quorum_reads=True)
        result = cluster.execute(COUNT_QUERY)
        assert result.scalar() == NUM_RECORDS
        assert result.stats.quorum_reads == NUM_NODES  # every shard checked
        assert not result.partial

    def test_divergent_replica_is_detected(self):
        cluster = make_cluster(quorum_reads=True)
        # Corrupt shard 0's backup copy (on node 1): a lost-update twin.
        backup = cluster.store.engine(0, 1)
        rogue = dict(RECORDS[0])
        rogue["unique1"], rogue["unique2"] = 999_991, 999_991
        backup.insert("Bench.data", [rogue])
        before = metrics.counter_value("replica_divergence_total")
        with pytest.raises(ReplicaDivergenceError) as excinfo:
            cluster.execute("SELECT COUNT(*) FROM Bench.data")
        assert excinfo.value.shard == 0
        assert set(excinfo.value.nodes) == {0, 1}
        assert metrics.counter_value("replica_divergence_total") > before

    def test_unreachable_quorum_fails_the_shard(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(1)
        # R=2 needs both replicas to answer; with node 1 dead shard 0's
        # quorum (nodes 0+1) can never assemble.
        cluster = make_cluster(injector, num_nodes=2, quorum_reads=True)
        with pytest.raises(ShardFailureError):
            cluster.execute(COUNT_QUERY)

    def test_quorum_majority_with_three_replicas_survives_one_loss(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(1)
        cluster = make_cluster(
            injector, num_nodes=3, replication_factor=3, quorum_reads=True
        )
        result = cluster.execute(COUNT_QUERY)
        assert result.scalar() == NUM_RECORDS  # 2-of-3 majorities still form
        assert not result.partial


# ----------------------------------------------------------------------
# The acceptance-criteria chaos test
# ----------------------------------------------------------------------
def canonical(value):
    """Byte-comparable form of a Table III expression result."""
    value = DataFrameAPI().materialize(value)
    if hasattr(value, "to_records"):
        return repr(value.to_records())
    return repr(value)


def run_all_expressions(cluster):
    connector = PostgresConnector(cluster, fault_injector=FaultInjector(sleep=no_sleep))
    tracer = Tracer(max_roots=4096)
    connector.set_tracer(tracer)
    df = PolyFrame("Bench", "data", connector)
    df2 = PolyFrame("Bench", "data2", connector)
    params = benchmark_params()
    api = DataFrameAPI()
    results = {expr.id: canonical(expr.run(df, df2, params, api)) for expr in EXPRESSIONS}
    return results, connector, tracer


class TestAvailabilityUnderNodeOutage:
    """ISSUE acceptance: R=2 + a dead node answers like the healthy run."""

    def test_every_expression_survives_a_permanent_node_outage(self):
        healthy_results, _, _ = run_all_expressions(make_cluster())

        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(2)
        before_failovers = metrics.counter_value("failovers_total")
        chaos_results, connector, tracer = run_all_expressions(make_cluster(injector))

        assert chaos_results == healthy_results
        assert all(r.outcome == "ok" for r in connector.send_log)  # never partial
        total_failovers = sum(r.failovers for r in connector.send_log)
        assert total_failovers >= 1
        assert metrics.counter_value("failovers_total") > before_failovers
        failover_spans = [
            span
            for root in tracer.spans
            for span in root.walk()
            if span.name == "failover"
        ]
        assert failover_spans, "chaos run emitted no failover spans"

    def test_same_seed_with_single_copy_raises(self):
        injector = FaultInjector(sleep=no_sleep)
        injector.node_down(2)
        cluster = make_cluster(injector, replication_factor=1)
        connector = PostgresConnector(cluster, fault_injector=FaultInjector(sleep=no_sleep))
        df = PolyFrame("Bench", "data", connector)
        with pytest.raises(ShardFailureError):
            len(df)


@settings(max_examples=12, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=4),
    dead_node=st.integers(min_value=0, max_value=3),
)
def test_property_any_single_node_outage_is_survivable(num_nodes, dead_node):
    """With R=2, killing any one node never changes a query's answer."""
    dead_node %= num_nodes
    injector = FaultInjector(sleep=no_sleep)
    injector.node_down(dead_node)
    cluster = GreenplumCluster(
        num_nodes,
        retry_policy=fast_policy(),
        fault_injector=injector,
        replication_factor=2,
    )
    cluster.create_table("B.data", primary_key=loaders.PRIMARY_KEY)
    cluster.insert("B.data", RECORDS, shard_key="unique1")
    result = cluster.execute("SELECT COUNT(*) FROM B.data")
    assert result.scalar() == NUM_RECORDS
    assert not result.partial
    assert result.stats.failovers >= 1
    assert dead_node not in result.served_by
