"""Shared fixtures: small datasets and pre-loaded engines."""

from __future__ import annotations

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.docstore import MongoDatabase
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB
from repro.wisconsin import loaders, wisconsin_records

RECORDS = 600  # small enough for fast tests, big enough for selectivity


@pytest.fixture(scope="session")
def wisconsin():
    """A small, deterministic Wisconsin dataset (with missing tenPercent)."""
    return wisconsin_records(RECORDS)


@pytest.fixture(scope="session")
def people():
    """A simple heterogeneous dataset used by non-benchmark tests."""
    records = []
    for i in range(200):
        record = {
            "id": i,
            "lang": ["en", "fr", "de"][i % 3],
            "name": f"user{i}",
            "age": i % 40,
        }
        if i % 5 != 0:
            record["score"] = i % 11
        records.append(record)
    return records


@pytest.fixture(scope="session")
def asterixdb(wisconsin):
    db = AsterixDB(query_prep_overhead=0.0)
    loaders.load_asterixdb(db, "Bench", "data", wisconsin)
    loaders.load_asterixdb(db, "Bench", "data2", wisconsin)
    return db


@pytest.fixture(scope="session")
def postgres(wisconsin):
    db = SQLDatabase(name="postgres")
    loaders.load_postgres(db, "Bench", "data", wisconsin)
    loaders.load_postgres(db, "Bench", "data2", wisconsin)
    return db


@pytest.fixture(scope="session")
def mongodb(wisconsin):
    db = MongoDatabase(query_prep_overhead=0.0)
    loaders.load_mongodb(db, "data", wisconsin)
    loaders.load_mongodb(db, "data2", wisconsin)
    return db


@pytest.fixture(scope="session")
def neo4j(wisconsin):
    db = Neo4jDatabase(query_prep_overhead=0.0)
    loaders.load_neo4j(db, "data", wisconsin)
    loaders.load_neo4j(db, "data2", wisconsin)
    return db


@pytest.fixture(scope="session")
def all_connectors(asterixdb, postgres, mongodb, neo4j):
    return {
        "asterixdb": AsterixDBConnector(asterixdb),
        "postgres": PostgresConnector(postgres),
        "mongodb": MongoDBConnector(mongodb),
        "neo4j": Neo4jConnector(neo4j),
    }


@pytest.fixture(scope="session")
def all_frames(all_connectors):
    return {
        name: PolyFrame("Bench", "data", connector)
        for name, connector in all_connectors.items()
    }
