"""Eager frame and series tests (the Pandas stand-in)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eager import EagerFrame, EagerSeries, frame_from_records, get_dummies, merge


@pytest.fixture()
def frame():
    return frame_from_records(
        [
            {"a": i, "b": i % 3, "s": f"x{i % 2}", "m": None if i % 5 == 0 else i}
            for i in range(30)
        ]
    )


class TestFrameBasics:
    def test_shape_and_columns(self, frame):
        assert len(frame) == 30
        assert frame.shape == (30, 4)
        assert frame.columns == ["a", "b", "s", "m"]

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError):
            EagerFrame({"a": [1, 2], "b": [1]})

    def test_column_access(self, frame):
        series = frame["a"]
        assert isinstance(series, EagerSeries)
        assert series.tolist() == list(range(30))

    def test_missing_column_raises(self, frame):
        with pytest.raises(KeyError):
            frame["nope"]
        with pytest.raises(KeyError):
            frame[["a", "nope"]]

    def test_projection(self, frame):
        projected = frame[["a", "b"]]
        assert projected.columns == ["a", "b"]
        assert len(projected) == 30

    def test_boolean_filter(self, frame):
        filtered = frame[frame["b"] == 1]
        assert all(record["b"] == 1 for record in filtered.to_records())
        assert len(filtered) == 10

    def test_combined_masks(self, frame):
        filtered = frame[(frame["b"] == 1) & (frame["a"] > 10)]
        assert all(r["b"] == 1 and r["a"] > 10 for r in filtered.to_records())
        either = frame[(frame["b"] == 1) | (frame["b"] == 2)]
        assert len(either) == 20
        negated = frame[~(frame["b"] == 1)]
        assert len(negated) == 20

    def test_head(self, frame):
        assert len(frame.head()) == 5
        assert len(frame.head(3)) == 3
        assert frame.head(100).shape[0] == 30

    def test_sort_values(self, frame):
        ordered = frame.sort_values("a", ascending=False)
        assert ordered.column_values("a")[:3] == [29, 28, 27]

    def test_sort_puts_absent_last(self, frame):
        ordered = frame.sort_values("m")
        values = ordered.column_values("m")
        assert values[-6:] == [None] * 6
        ordered_desc = frame.sort_values("m", ascending=False)
        assert ordered_desc.column_values("m")[-6:] == [None] * 6

    def test_setitem(self, frame):
        frame["double"] = frame["a"] * 2
        assert frame.column_values("double")[:3] == [0, 2, 4]

    def test_rename_and_drop(self, frame):
        renamed = frame.rename({"a": "alpha"})
        assert "alpha" in renamed.columns
        dropped = frame.drop(["s"])
        assert "s" not in dropped.columns

    def test_describe(self, frame):
        stats = frame.describe()
        assert stats.column_values("statistic") == ["count", "mean", "std", "min", "max"]
        a_column = stats.column_values("a")
        assert a_column[0] == 30 and a_column[4] == 29

    def test_equals(self, frame):
        assert frame.equals(frame[frame.columns])
        assert not frame.equals(frame.head(5))

    def test_to_string_renders(self, frame):
        text = frame.to_string(max_rows=2)
        assert "a" in text and "more rows" in text


class TestSeriesOps:
    def test_comparisons_with_none_are_false(self):
        series = EagerSeries([1, None, 3])
        assert (series > 0).tolist() == [True, False, True]
        assert (series == 1).tolist() == [True, False, False]

    def test_arithmetic_propagates_none(self):
        series = EagerSeries([1, None, 3])
        assert (series + 1).tolist() == [2, None, 4]
        assert (series * 2).tolist() == [2, None, 6]
        assert (series % 2).tolist() == [1, None, 1]

    def test_series_vs_series(self):
        left = EagerSeries([1, 2, 3])
        right = EagerSeries([3, 2, 1])
        assert (left == right).tolist() == [False, True, False]
        assert (left + right).tolist() == [4, 4, 4]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            EagerSeries([1, 2]) == EagerSeries([1])

    def test_map_skips_none(self):
        series = EagerSeries(["a", None, "b"])
        assert series.map(str.upper).tolist() == ["A", None, "B"]

    def test_isna_notna(self):
        series = EagerSeries([1, None, 3])
        assert series.isna().tolist() == [False, True, False]
        assert series.notna().tolist() == [True, False, True]

    def test_aggregates_skip_none(self):
        series = EagerSeries([4, None, 2, 6])
        assert series.max() == 6
        assert series.min() == 2
        assert series.sum() == 12
        assert series.count() == 3
        assert series.mean() == pytest.approx(4.0)
        assert series.std() == pytest.approx(math.sqrt(8 / 3))

    def test_aggregates_on_all_none(self):
        series = EagerSeries([None, None])
        assert series.max() is None
        assert series.mean() is None
        assert series.count() == 0

    def test_agg_dispatch(self):
        series = EagerSeries([1, 2, 3])
        assert series.agg("max") == 3
        with pytest.raises(ValueError):
            series.agg("median")

    def test_unique_and_value_counts(self):
        series = EagerSeries([1, 2, 2, None, 1, 1])
        assert series.unique() == [1, 2, None]
        assert series.value_counts() == {1: 3, 2: 2}
        assert series.nunique() == 2


class TestGroupBy:
    def test_agg_all_columns(self, frame):
        result = frame.groupby("b").agg("count")
        assert len(result) == 3
        assert result.column_values("a") == [10, 10, 10]

    def test_agg_selected_column(self, frame):
        result = frame.groupby("b")["a"].agg("max")
        assert result.columns == ["b", "max_a"]
        assert result.column_values("max_a") == [27, 28, 29]

    def test_group_keys_sorted(self, frame):
        result = frame.groupby("s").agg("count")
        assert result.column_values("s") == ["x0", "x1"]

    def test_absent_keys_dropped(self):
        frame = frame_from_records([{"k": None, "v": 1}, {"k": "a", "v": 2}])
        result = frame.groupby("k").agg("count")
        assert len(result) == 1

    def test_named_shortcuts(self, frame):
        assert frame.groupby("b").count().equals(frame.groupby("b").agg("count"))
        assert len(frame.groupby("b").mean()) == 3

    def test_unknown_column_raises(self, frame):
        with pytest.raises(KeyError):
            frame.groupby("nope")
        with pytest.raises(KeyError):
            frame.groupby("b")["nope"]


class TestMerge:
    def test_inner_join_counts(self):
        left = frame_from_records([{"k": n, "l": n * 10} for n in range(5)])
        right = frame_from_records([{"k": n, "r": n} for n in range(3, 8)])
        joined = merge(left, right, left_on="k", right_on="k")
        assert len(joined) == 2
        assert set(joined.columns) == {"k_x", "l", "k_y", "r"}

    def test_duplicate_keys_multiply(self):
        left = frame_from_records([{"k": 1}, {"k": 1}])
        right = frame_from_records([{"k": 1}, {"k": 1}, {"k": 1}])
        assert len(merge(left, right, left_on="k", right_on="k")) == 6

    def test_none_keys_never_match(self):
        left = frame_from_records([{"k": None}, {"k": 1}])
        right = frame_from_records([{"k": None}, {"k": 1}])
        assert len(merge(left, right, left_on="k", right_on="k")) == 1

    def test_only_inner_supported(self):
        frame = frame_from_records([{"k": 1}])
        with pytest.raises(ValueError):
            merge(frame, frame, left_on="k", right_on="k", how="left")

    def test_missing_join_column(self):
        frame = frame_from_records([{"k": 1}])
        with pytest.raises(KeyError):
            merge(frame, frame, left_on="zzz", right_on="k")


class TestGetDummies:
    def test_series_one_hot(self):
        series = EagerSeries(["a", "b", "a", None], name="cat")
        encoded = get_dummies(series)
        assert encoded.columns == ["cat_a", "cat_b"]
        assert encoded.column_values("cat_a") == [1, 0, 1, 0]
        assert encoded.column_values("cat_b") == [0, 1, 0, 0]

    def test_frame_encodes_string_columns_only(self):
        frame = frame_from_records([{"n": 1, "c": "x"}, {"n": 2, "c": "y"}])
        encoded = get_dummies(frame)
        assert set(encoded.columns) == {"n", "c_x", "c_y"}

    def test_prefix_override(self):
        encoded = get_dummies(EagerSeries(["a"], name="c"), prefix="p")
        assert encoded.columns == ["p_a"]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-100, 100) | st.none(), max_size=80))
def test_property_filter_preserves_matching_rows(values):
    frame = frame_from_records([{"v": value} for value in values])
    if len(frame) == 0:
        return
    filtered = frame[frame["v"] > 0]
    assert filtered.column_values("v") == [v for v in values if v is not None and v > 0]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=1, max_size=80))
def test_property_groupby_counts_partition_rows(keys):
    frame = frame_from_records([{"k": key, "v": 1} for key in keys])
    grouped = frame.groupby("k")["v"].agg("count")
    assert sum(grouped.column_values("count_v")) == len(keys)
