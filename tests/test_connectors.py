"""Connector tests: the abstract contract and each implementation."""

from __future__ import annotations

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.core.connectors.base import DatabaseConnector, SendRecord
from repro.docstore import MongoDatabase
from repro.errors import ConnectorError, ParseError
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlengine.result import ResultSet
from repro.sqlpp import AsterixDB


class TestAbstractContract:
    def test_language_required(self):
        class Bad(DatabaseConnector):
            def _execute(self, query, collection):  # pragma: no cover
                raise NotImplementedError

            def collection_exists(self, namespace, collection):  # pragma: no cover
                return True

        with pytest.raises(TypeError):
            Bad()

    def test_send_log_records_timings(self):
        db = SQLDatabase()
        db.create_table("t")
        db.insert("t", [{"a": 1}])
        connector = PostgresConnector(db)
        assert connector.send_log == []
        connector.send("SELECT * FROM t x", "t")
        assert len(connector.send_log) == 1
        record = connector.send_log[0]
        assert isinstance(record, SendRecord)
        assert record.real_seconds > 0
        assert record.reported_seconds > 0

    def test_default_preprocess_is_identity(self):
        db = SQLDatabase()
        connector = PostgresConnector(db)
        assert connector.preprocess("SELECT 1", "t") == "SELECT 1"

    def test_qualified_names(self):
        sql = PostgresConnector(SQLDatabase())
        assert sql.qualified_name("Test", "Users") == "Test.Users"
        assert sql.qualified_name("", "Users") == "Users"
        mongo = MongoDBConnector(MongoDatabase())
        assert mongo.qualified_name("Test", "Users") == "Users"
        neo = Neo4jConnector(Neo4jDatabase())
        assert neo.qualified_name("Test", "Users") == "Users"


class TestExistenceChecks:
    def test_asterixdb(self):
        db = AsterixDB()
        db.create_dataverse("D")
        db.create_dataset("D", "s", primary_key="id")
        connector = AsterixDBConnector(db)
        assert connector.collection_exists("D", "s")
        assert not connector.collection_exists("D", "nope")

    def test_postgres(self):
        db = SQLDatabase()
        db.create_table("N.t")
        connector = PostgresConnector(db)
        assert connector.collection_exists("N", "t")
        assert not connector.collection_exists("N", "zzz")

    def test_mongo(self):
        db = MongoDatabase()
        db.create_collection("c")
        connector = MongoDBConnector(db)
        assert connector.collection_exists("anything", "c")
        assert not connector.collection_exists("anything", "zzz")

    def test_neo4j_requires_nodes(self):
        db = Neo4jDatabase()
        connector = Neo4jConnector(db)
        assert not connector.collection_exists("", "L")
        db.load("L", [{"a": 1}])
        assert connector.collection_exists("", "L")


class TestErrorPaths:
    def test_persist_without_create_and_load(self):
        # A connector that never implements bulk loading must fail persist()
        # with a clear NotImplementedError, not an attribute error.
        class MinimalConnector(DatabaseConnector):
            language = "sql"

            def _execute(self, query, collection):
                return ResultSet(records=[{"a": 1}])

            def collection_exists(self, namespace, collection):
                return True

        connector = MinimalConnector()
        with pytest.raises(NotImplementedError, match="MinimalConnector"):
            connector.persist("SELECT * FROM t x", "t", "N", "saved")

    def test_polyframe_init_rejects_missing_collection(self):
        db = SQLDatabase()
        connector = PostgresConnector(db)
        with pytest.raises(ConnectorError, match="does not exist"):
            PolyFrame("Nope", "missing", connector)
        # No query was ever sent for the failed init.
        assert connector.send_log == []

    def test_polyframe_init_skips_check_when_not_validating(self):
        connector = PostgresConnector(SQLDatabase())
        df = PolyFrame("Nope", "missing", connector, validate=False)
        assert "missing" in df.query

    def test_send_log_records_failed_attempts(self):
        from repro.resilience import FaultInjector

        db = SQLDatabase()
        db.create_table("t")
        # An explicit (empty) injector keeps env-driven chaos injection out
        # of this test, so the attempt count stays exactly 1.
        connector = PostgresConnector(db, fault_injector=FaultInjector())
        with pytest.raises(ParseError):
            connector.send("SELECT FROM WHERE", "t")
        assert len(connector.send_log) == 1
        record = connector.send_log[0]
        assert record.outcome == "error"
        assert record.attempts == 1
        assert record.reported_seconds == 0.0


class TestMongoPreprocess:
    def test_stage_text_becomes_pipeline(self):
        connector = MongoDBConnector(MongoDatabase())
        pipeline = connector.preprocess('{ "$match": {} },\n{ "$limit": 3 }', "c")
        assert pipeline == [{"$match": {}}, {"$limit": 3}]

    def test_invalid_json_rejected(self):
        connector = MongoDBConnector(MongoDatabase())
        with pytest.raises(ConnectorError):
            connector.preprocess('{ "$match": {} }, { broken', "c")

    def test_non_stage_entries_fail_at_execution(self):
        from repro.errors import ExecutionError

        db = MongoDatabase(query_prep_overhead=0.0)
        db.create_collection("c")
        connector = MongoDBConnector(db)
        with pytest.raises(ExecutionError):
            connector.send('{ "$match": {}, "$limit": 1 }', "c")


class TestExplainPassThrough:
    def test_postgres_explain(self):
        db = SQLDatabase()
        db.create_table("t")
        connector = PostgresConnector(db)
        assert "physical" in connector.explain("SELECT COUNT(*) FROM t x")

    def test_asterixdb_explain(self):
        db = AsterixDB()
        db.create_dataverse("D")
        db.create_dataset("D", "s", primary_key="id")
        connector = AsterixDBConnector(db)
        assert "physical" in connector.explain("SELECT VALUE COUNT(*) FROM D.s t")


class TestPostprocess:
    def test_bare_values_wrapped(self):
        db = AsterixDB(query_prep_overhead=0.0)
        db.create_dataverse("D")
        db.create_dataset("D", "s", primary_key="id")
        db.load("D.s", [{"id": 1}])
        connector = AsterixDBConnector(db)
        result = connector.send("SELECT VALUE t.id FROM D.s t", "s")
        assert connector.postprocess(result) == [{"value": 1}]

    def test_records_passed_through(self):
        db = SQLDatabase()
        db.create_table("t")
        db.insert("t", [{"a": 1}])
        connector = PostgresConnector(db)
        result = connector.send("SELECT * FROM t x", "t")
        assert connector.postprocess(result) == [{"a": 1}]
