"""Connector tests: the abstract contract and each implementation."""

from __future__ import annotations

import pytest

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PostgresConnector,
)
from repro.core.connectors.base import DatabaseConnector, SendRecord
from repro.docstore import MongoDatabase
from repro.errors import ConnectorError
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB


class TestAbstractContract:
    def test_language_required(self):
        class Bad(DatabaseConnector):
            def _execute(self, query, collection):  # pragma: no cover
                raise NotImplementedError

            def collection_exists(self, namespace, collection):  # pragma: no cover
                return True

        with pytest.raises(TypeError):
            Bad()

    def test_send_log_records_timings(self):
        db = SQLDatabase()
        db.create_table("t")
        db.insert("t", [{"a": 1}])
        connector = PostgresConnector(db)
        assert connector.send_log == []
        connector.send("SELECT * FROM t x", "t")
        assert len(connector.send_log) == 1
        record = connector.send_log[0]
        assert isinstance(record, SendRecord)
        assert record.real_seconds > 0
        assert record.reported_seconds > 0

    def test_default_preprocess_is_identity(self):
        db = SQLDatabase()
        connector = PostgresConnector(db)
        assert connector.preprocess("SELECT 1", "t") == "SELECT 1"

    def test_qualified_names(self):
        sql = PostgresConnector(SQLDatabase())
        assert sql.qualified_name("Test", "Users") == "Test.Users"
        assert sql.qualified_name("", "Users") == "Users"
        mongo = MongoDBConnector(MongoDatabase())
        assert mongo.qualified_name("Test", "Users") == "Users"
        neo = Neo4jConnector(Neo4jDatabase())
        assert neo.qualified_name("Test", "Users") == "Users"


class TestExistenceChecks:
    def test_asterixdb(self):
        db = AsterixDB()
        db.create_dataverse("D")
        db.create_dataset("D", "s", primary_key="id")
        connector = AsterixDBConnector(db)
        assert connector.collection_exists("D", "s")
        assert not connector.collection_exists("D", "nope")

    def test_postgres(self):
        db = SQLDatabase()
        db.create_table("N.t")
        connector = PostgresConnector(db)
        assert connector.collection_exists("N", "t")
        assert not connector.collection_exists("N", "zzz")

    def test_mongo(self):
        db = MongoDatabase()
        db.create_collection("c")
        connector = MongoDBConnector(db)
        assert connector.collection_exists("anything", "c")
        assert not connector.collection_exists("anything", "zzz")

    def test_neo4j_requires_nodes(self):
        db = Neo4jDatabase()
        connector = Neo4jConnector(db)
        assert not connector.collection_exists("", "L")
        db.load("L", [{"a": 1}])
        assert connector.collection_exists("", "L")


class TestMongoPreprocess:
    def test_stage_text_becomes_pipeline(self):
        connector = MongoDBConnector(MongoDatabase())
        pipeline = connector.preprocess('{ "$match": {} },\n{ "$limit": 3 }', "c")
        assert pipeline == [{"$match": {}}, {"$limit": 3}]

    def test_invalid_json_rejected(self):
        connector = MongoDBConnector(MongoDatabase())
        with pytest.raises(ConnectorError):
            connector.preprocess('{ "$match": {} }, { broken', "c")

    def test_non_stage_entries_fail_at_execution(self):
        from repro.errors import ExecutionError

        db = MongoDatabase(query_prep_overhead=0.0)
        db.create_collection("c")
        connector = MongoDBConnector(db)
        with pytest.raises(ExecutionError):
            connector.send('{ "$match": {}, "$limit": 1 }', "c")


class TestExplainPassThrough:
    def test_postgres_explain(self):
        db = SQLDatabase()
        db.create_table("t")
        connector = PostgresConnector(db)
        assert "physical" in connector.explain("SELECT COUNT(*) FROM t x")

    def test_asterixdb_explain(self):
        db = AsterixDB()
        db.create_dataverse("D")
        db.create_dataset("D", "s", primary_key="id")
        connector = AsterixDBConnector(db)
        assert "physical" in connector.explain("SELECT VALUE COUNT(*) FROM D.s t")


class TestPostprocess:
    def test_bare_values_wrapped(self):
        db = AsterixDB(query_prep_overhead=0.0)
        db.create_dataverse("D")
        db.create_dataset("D", "s", primary_key="id")
        db.load("D.s", [{"id": 1}])
        connector = AsterixDBConnector(db)
        result = connector.send("SELECT VALUE t.id FROM D.s t", "s")
        assert connector.postprocess(result) == [{"value": 1}]

    def test_records_passed_through(self):
        db = SQLDatabase()
        db.create_table("t")
        db.insert("t", [{"a": 1}])
        connector = PostgresConnector(db)
        result = connector.send("SELECT * FROM t x", "t")
        assert connector.postprocess(result) == [{"a": 1}]
