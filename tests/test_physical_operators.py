"""Direct tests for physical operators and the result container."""

from __future__ import annotations

import pytest

from repro.sqlengine import SQLDatabase
from repro.sqlengine.ast_nodes import ColumnRef, FuncCall, OrderItem, SelectItem
from repro.sqlengine.expressions import Evaluator
from repro.sqlengine.physical import (
    ExecutionContext,
    HashJoin,
    IndexNestedLoopJoin,
    LimitOp,
    SeqScan,
    SortOp,
    TopKOp,
    make_accumulator,
)
from repro.sqlengine.result import QueryStats, ResultSet
from repro.storage.catalog import Catalog


@pytest.fixture()
def ctx():
    catalog = Catalog()
    catalog.create_table("t")
    catalog.insert_rows(
        "t",
        [
            {"n": value, "g": value % 3 if value is not None else None}
            for value in (5, 1, 4, 2, 3, None)
        ],
    )
    catalog.create_index("t_n", "t", "n")
    return ExecutionContext(catalog, Evaluator("sql"), QueryStats())


def run(op, ctx):
    return list(op.execute(ctx))


class TestScansAndSorts:
    def test_seq_scan_counts_fetches(self, ctx):
        rows = run(SeqScan("t", "x"), ctx)
        assert len(rows) == 6
        assert ctx.stats.heap_fetches == 6
        assert ctx.stats.full_scans == 1

    def test_sort_none_goes_by_key_order(self, ctx):
        op = SortOp(SeqScan("t", "x"), (OrderItem(ColumnRef("n", "x")),))
        values = [row["x"]["n"] for row in run(op, ctx)]
        assert values == [None, 1, 2, 3, 4, 5]  # absent sorts first ascending

    def test_topk_matches_full_sort(self, ctx):
        keys = (OrderItem(ColumnRef("n", "x"), descending=True),)
        full = [row["x"]["n"] for row in run(SortOp(SeqScan("t", "x"), keys), ctx)][:3]
        topk = [row["x"]["n"] for row in run(TopKOp(SeqScan("t", "x"), keys, 3), ctx)]
        assert topk == full == [5, 4, 3]

    def test_limit_with_offset(self, ctx):
        op = LimitOp(SortOp(SeqScan("t", "x"), (OrderItem(ColumnRef("n", "x")),)), 2, offset=1)
        values = [row["x"]["n"] for row in run(op, ctx)]
        assert values == [1, 2]

    def test_limit_zero(self, ctx):
        assert run(LimitOp(SeqScan("t", "x"), 0), ctx) == []


class TestJoins:
    def test_hash_join_skips_null_keys(self, ctx):
        op = HashJoin(
            SeqScan("t", "l"),
            SeqScan("t", "r"),
            ColumnRef("n", "l"),
            ColumnRef("n", "r"),
        )
        rows = run(op, ctx)
        assert len(rows) == 5  # the NULL row never matches
        assert all(row["l"]["n"] == row["r"]["n"] for row in rows)

    def test_index_nested_loop_join(self, ctx):
        op = IndexNestedLoopJoin(
            outer=SeqScan("t", "l"),
            inner_table="t",
            inner_alias="r",
            inner_index="t_n",
            outer_key=ColumnRef("n", "l"),
        )
        rows = run(op, ctx)
        # NULL outer keys skipped; NULL is in the index but never probed.
        assert len(rows) == 5
        assert ctx.stats.index_entries == 5


class TestAccumulators:
    def test_count_star_counts_rows(self):
        acc = make_accumulator(FuncCall("COUNT", star=True))
        for _ in range(4):
            acc.add_row()
        assert acc.result() == 4

    def test_count_value_skips_absent(self):
        acc = make_accumulator(FuncCall("COUNT", (ColumnRef("x"),)))
        for value in (1, None, 2):
            acc.add(value)
        assert acc.result() == 2

    def test_min_max_sum(self):
        min_acc = make_accumulator(FuncCall("MIN", (ColumnRef("x"),)))
        max_acc = make_accumulator(FuncCall("MAX", (ColumnRef("x"),)))
        sum_acc = make_accumulator(FuncCall("SUM", (ColumnRef("x"),)))
        for value in (3, None, 7, 1):
            min_acc.add(value)
            max_acc.add(value)
            sum_acc.add(value)
        assert (min_acc.result(), max_acc.result(), sum_acc.result()) == (1, 7, 11)

    def test_avg_std(self):
        avg = make_accumulator(FuncCall("AVG", (ColumnRef("x"),)))
        std = make_accumulator(FuncCall("STDDEV", (ColumnRef("x"),)))
        for value in (2, 4, None):
            avg.add(value)
            std.add(value)
        assert avg.result() == 3.0
        assert std.result() == pytest.approx(1.0)

    def test_empty_aggregates(self):
        assert make_accumulator(FuncCall("MIN", (ColumnRef("x"),))).result() is None
        assert make_accumulator(FuncCall("AVG", (ColumnRef("x"),))).result() is None
        assert make_accumulator(FuncCall("SUM", (ColumnRef("x"),))).result() is None


class TestResultSet:
    def test_scalar_from_record(self):
        assert ResultSet(records=[{"count": 7}]).scalar() == 7

    def test_scalar_from_bare_value(self):
        assert ResultSet(records=[7]).scalar() == 7

    def test_scalar_requires_single_row(self):
        with pytest.raises(ValueError):
            ResultSet(records=[]).scalar()
        with pytest.raises(ValueError):
            ResultSet(records=[{"a": 1}, {"a": 2}]).scalar()

    def test_scalar_requires_single_column(self):
        with pytest.raises(ValueError):
            ResultSet(records=[{"a": 1, "b": 2}]).scalar()

    def test_to_records_wraps_values(self):
        assert ResultSet(records=[1, {"a": 2}]).to_records() == [
            {"value": 1},
            {"a": 2},
        ]

    def test_stats_merge(self):
        first = QueryStats(heap_fetches=1, index_entries=2, full_scans=1)
        second = QueryStats(heap_fetches=3, string_store_reads=4)
        first.merge(second)
        assert first.heap_fetches == 4
        assert first.string_store_reads == 4
        assert first.full_scans == 1


class TestExplainTree:
    def test_tree_string_nests(self):
        db = SQLDatabase()
        db.create_table("t")
        db.insert("t", [{"a": 1}])
        plan = db.explain("SELECT a FROM (SELECT * FROM t) x WHERE a = 1 LIMIT 2")
        lines = plan.splitlines()
        assert any(line.startswith("Limit") for line in lines)
        assert any("Filter" in line or "IndexEqualityScan" in line for line in lines)
