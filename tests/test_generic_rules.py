"""Unit tests for the generic rewrite rules (describe / get_dummies / value_counts)."""

from __future__ import annotations

import pytest

from repro import AsterixDBConnector, PolyFrame
from repro.core.generic import describe, get_dummies, value_counts
from repro.errors import RewriteError
from repro.sqlpp import AsterixDB


@pytest.fixture()
def frame():
    db = AsterixDB(query_prep_overhead=0.0)
    db.create_dataverse("G")
    db.create_dataset("G", "items", primary_key="id")
    db.load(
        "G.items",
        [
            {"id": i, "price": i % 7, "qty": i % 3,
             "category": ["food", "toys", "books"][i % 3], "label": f"item{i}"}
            for i in range(90)
        ],
    )
    return PolyFrame("G", "items", AsterixDBConnector(db))


class TestDescribe:
    def test_auto_detects_numeric_attributes(self, frame):
        stats = frame.describe()
        assert {"id", "price", "qty"} <= set(stats.columns)
        assert "category" not in stats.columns

    def test_values(self, frame):
        stats = describe(frame, attributes=["price"])
        rows = dict(zip(stats.column_values("statistic"), stats.column_values("price")))
        assert rows["count"] == 90
        assert rows["min"] == 0
        assert rows["max"] == 6
        assert rows["avg"] == pytest.approx(sum(i % 7 for i in range(90)) / 90)

    def test_single_query(self, frame):
        """describe() is one composed query, not one per statistic."""
        calls = []
        original = frame.connector.send

        def spy(query, collection, **kwargs):
            calls.append(query)
            return original(query, collection, **kwargs)

        frame.connector.send = spy
        try:
            describe(frame, attributes=["price", "qty"])
        finally:
            frame.connector.send = original
        assert len(calls) == 1

    def test_no_numeric_attributes(self):
        db = AsterixDB(query_prep_overhead=0.0)
        db.create_dataverse("G")
        db.create_dataset("G", "s", primary_key="id")
        db.load("G.s", [{"id": 1, "name": "only strings"}])
        frame = PolyFrame("G", "s", AsterixDBConnector(db))
        with pytest.raises(RewriteError):
            describe(frame, attributes=[])


class TestGetDummies:
    def test_one_hot_columns(self, frame):
        encoded = get_dummies(frame["category"]).head(6)
        assert set(encoded.columns) == {
            "category_books", "category_food", "category_toys"
        }
        for record in encoded.to_records():
            assert sum(bool(v) for v in record.values()) == 1

    def test_lazy_until_action(self, frame):
        calls = []
        original = frame.connector.send

        def spy(query, collection, **kwargs):
            calls.append(query)
            return original(query, collection, **kwargs)

        frame.connector.send = spy
        try:
            encoded = get_dummies(frame["category"])
            # one distinct-values query ran; the projection has not.
            assert len(calls) == 1
            encoded.head(1)
            assert len(calls) == 2
        finally:
            frame.connector.send = original

    def test_requires_plain_column(self, frame):
        with pytest.raises(RewriteError):
            get_dummies(frame["price"] + 1)


class TestValueCounts:
    def test_ordered_counts(self, frame):
        counts = value_counts(frame["category"]).collect()
        records = counts.to_records()
        assert records[0]["count_category"] == 30
        values = [record["count_category"] for record in records]
        assert values == sorted(values, reverse=True)

    def test_requires_plain_column(self, frame):
        with pytest.raises(RewriteError):
            value_counts(frame["price"] + 1)


class TestSeriesUnique:
    def test_unique_values(self, frame):
        assert sorted(frame["category"].unique()) == ["books", "food", "toys"]

    def test_unique_requires_plain_column(self, frame):
        with pytest.raises(RewriteError):
            (frame["price"] + 1).unique()
