"""Wisconsin generator tests: Table II attribute invariants."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wisconsin import WisconsinGenerator, wisconsin_records
from repro.wisconsin.generator import _string4, _unique_string


@pytest.fixture(scope="module")
def records():
    return wisconsin_records(500)


class TestTableIIInvariants:
    def test_unique2_is_sequential_key(self, records):
        assert [r["unique2"] for r in records] == list(range(500))

    def test_unique1_is_a_permutation(self, records):
        values = [r["unique1"] for r in records if "unique1" in r]
        assert sorted(values) == list(range(500))
        assert values != list(range(500))  # randomly ordered

    def test_modular_attributes(self, records):
        for record in records:
            unique1 = record["unique1"]
            assert record["two"] == unique1 % 2
            assert record["four"] == unique1 % 4
            assert record["ten"] == unique1 % 10
            assert record["twenty"] == unique1 % 20
            assert record["onePercent"] == unique1 % 100
            assert record["twentyPercent"] == unique1 % 5
            assert record["fiftyPercent"] == unique1 % 2
            assert record["unique3"] == unique1
            if "tenPercent" in record:
                assert record["tenPercent"] == unique1 % 10

    def test_even_odd_one_percent(self, records):
        for record in records:
            assert record["evenOnePercent"] == record["onePercent"] * 2
            assert record["oddOnePercent"] == record["onePercent"] * 2 + 1
            assert record["evenOnePercent"] % 2 == 0
            assert record["oddOnePercent"] % 2 == 1

    def test_selectivities(self, records):
        # onePercent equality selects ~1% of rows (uniform distribution).
        count = sum(1 for r in records if r["onePercent"] == 42)
        assert count == 5  # exactly 1% of 500

    def test_string_attributes(self, records):
        for record in records[:20]:
            assert len(record["stringu1"]) == 52
            assert len(record["stringu2"]) == 52
            assert len(record["string4"]) == 52
            assert record["string4"][:4] in ("AAAA", "HHHH", "OOOO", "VVVV")

    def test_stringu_encodes_number_uniquely(self):
        assert _unique_string(0) != _unique_string(1)
        assert _unique_string(12345) == _unique_string(12345)
        assert _unique_string(7).endswith("x" * 45)

    def test_string4_cycles(self):
        letters = [_string4(n)[0] for n in range(8)]
        assert letters == ["A", "H", "O", "V", "A", "H", "O", "V"]

    def test_missing_tenpercent_fraction(self, records):
        missing = sum(1 for r in records if "tenPercent" not in r)
        assert missing == 50  # exactly 10%: unique1 % 10 == 0

    def test_missing_disabled(self):
        complete = wisconsin_records(100, missing_attribute=None)
        assert all("tenPercent" in r for r in complete)

    def test_custom_missing_attribute(self):
        records = wisconsin_records(100, missing_attribute="twenty", missing_fraction=0.5)
        missing = sum(1 for r in records if "twenty" not in r)
        assert missing == 50


class TestGeneratorMechanics:
    def test_deterministic_for_seed(self):
        first = wisconsin_records(50, seed=9)
        second = wisconsin_records(50, seed=9)
        assert first == second
        different = wisconsin_records(50, seed=10)
        assert first != different

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            WisconsinGenerator(0)
        with pytest.raises(ValueError):
            WisconsinGenerator(10, missing_fraction=2.0)

    def test_write_json_roundtrip(self, tmp_path):
        path = tmp_path / "w.json"
        generator = WisconsinGenerator(30)
        written = generator.write_json(path)
        assert written == path.stat().st_size
        loaded = [json.loads(line) for line in path.read_text().splitlines()]
        assert loaded == generator.records()

    def test_estimated_json_bytes_close(self, tmp_path):
        path = tmp_path / "w.json"
        generator = WisconsinGenerator(100)
        actual = generator.write_json(path)
        estimate = generator.estimated_json_bytes()
        assert abs(estimate - actual) / actual < 0.05


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 400))
def test_property_any_size_has_consistent_attributes(n):
    records = wisconsin_records(n)
    assert len(records) == n
    assert sorted(r["unique1"] for r in records) == list(range(n))
