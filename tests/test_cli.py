"""CLI driver tests."""

from __future__ import annotations

import pytest

from repro.bench.cli import _parse_expressions, main


class TestParseExpressions:
    def test_range(self):
        exprs = _parse_expressions("1-3")
        assert [e.id for e in exprs] == [1, 2, 3]

    def test_list(self):
        exprs = _parse_expressions("5,9,13")
        assert [e.id for e in exprs] == [5, 9, 13]

    def test_mixed(self):
        exprs = _parse_expressions("1,6-8")
        assert [e.id for e in exprs] == [1, 6, 7, 8]


class TestCommands:
    def test_queries_command(self, capsys):
        assert main(["queries"]) == 0
        out = capsys.readouterr().out
        for marker in ("--- sqlpp ---", "--- sql ---", "--- mongo ---", "--- cypher ---"):
            assert marker in out
        assert "LIMIT 10" in out

    def test_single_node_small(self, capsys):
        code = main([
            "single-node", "--xs", "200", "--sizes", "XS", "--expressions", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Expression 1" in out and "Pandas" in out

    def test_single_node_rejects_bad_size(self, capsys):
        assert main(["single-node", "--sizes", "HUGE"]) == 2

    def test_speedup_small(self, capsys):
        code = main(["speedup", "--xs", "30", "--nodes", "1,2"])
        assert code == 0
        assert "Speedup" in capsys.readouterr().out

    def test_scaleup_small(self, capsys):
        code = main(["scaleup", "--xs", "30", "--nodes", "1,2"])
        assert code == 0
        assert "Scaleup" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
