"""Unit tests for the observability primitives themselves.

The cross-layer behaviour is pinned by ``tests/test_obs_spans.py`` and
``tests/test_explain_analyze.py``; these tests cover the `repro.obs`
building blocks directly — span trees, JSON export, the metrics
registry, and the profile helpers.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    OpProfile,
    Span,
    Tracer,
    ambient_span,
    analyze_active,
    analyze_mode,
    format_profile,
)
from repro.obs.trace import NOOP_SPAN


# ----------------------------------------------------------------------
# Spans and tracers
# ----------------------------------------------------------------------
def test_spans_nest_and_time():
    tracer = Tracer()
    with tracer.span("outer", a=1) as outer:
        with tracer.span("inner") as inner:
            inner.set(b=2)
    assert tracer.spans == [outer]
    assert outer.find("inner") == [inner]
    assert inner.attributes == {"b": 2}
    assert outer.duration_ms >= inner.duration_ms >= 0.0
    assert [s.name for s in outer.walk()] == ["outer", "inner"]


def test_exception_marks_span_and_still_finishes():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("nope")
    (root,) = tracer.spans
    assert root.attributes["error"] == "ValueError: nope"


def test_add_child_synthetic_duration():
    tracer = Tracer()
    with tracer.span("parent") as parent:
        child = parent.add_child("op", 1.5, rows_out=7)
    assert child.duration_ms == pytest.approx(1.5)
    assert parent.children == [child]
    assert child.attributes == {"rows_out": 7}


def test_json_export_schema(tmp_path):
    tracer = Tracer()
    with tracer.span("root", op="head"):
        with tracer.span("leaf"):
            pass
    path = tmp_path / "trace.json"
    text = tracer.export_json(str(path))
    payload = json.loads(path.read_text())
    assert payload == json.loads(text)
    assert payload["schema"] == "repro-trace/1"
    assert payload["dropped_roots"] == 0
    (root,) = payload["spans"]
    assert root["name"] == "root"
    assert root["attributes"] == {"op": "head"}
    assert root["children"][0]["name"] == "leaf"
    assert root["duration_ms"] >= 0


def test_max_roots_drops_and_counts():
    tracer = Tracer(max_roots=2)
    for _ in range(5):
        with tracer.span("r"):
            pass
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3
    tracer.reset()
    assert tracer.spans == [] and tracer.dropped == 0


def test_ambient_span_nests_under_open_span_of_any_tracer():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with ambient_span("engine") as inner:
            assert isinstance(inner, Span)
    assert outer.find("engine")
    assert tracer.spans == [outer]


def test_ambient_span_is_noop_without_tracer(monkeypatch):
    from repro.obs.trace import _reset_global_tracer

    monkeypatch.delenv("REPRO_TRACE", raising=False)
    _reset_global_tracer()
    try:
        assert ambient_span("anything") is NOOP_SPAN
    finally:
        _reset_global_tracer()


def test_noop_span_is_inert():
    assert NOOP_SPAN.recording is False
    with NOOP_SPAN as span:
        assert span.set(x=1) is NOOP_SPAN
        assert span.add_child("c", 1.0) is NOOP_SPAN
    assert NOOP_SPAN.find("c") == []
    assert list(NOOP_SPAN.walk()) == []
    assert NOOP_SPAN.to_dict() == {}


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_counter_series_by_labels():
    registry = MetricsRegistry()
    registry.counter("queries_total").inc()
    registry.counter("queries_total", backend="pg").inc(2)
    assert registry.counter_value("queries_total") == 1
    assert registry.counter_value("queries_total", backend="pg") == 2
    assert registry.counter_value("queries_total", backend="neo") == 0


def test_counter_rejects_negative():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1)


def test_histogram_summary_stats():
    registry = MetricsRegistry()
    h = registry.histogram("query_seconds", backend="pg")
    for value in (0.5, 0.1, 0.3):
        h.observe(value)
    assert h.count == 3
    assert h.minimum == 0.1 and h.maximum == 0.5
    assert h.mean == pytest.approx(0.3)
    assert registry.histogram("empty").mean == 0.0


def test_snapshot_and_reset():
    registry = MetricsRegistry()
    registry.counter("queries_total", backend="pg").inc()
    registry.histogram("query_seconds").observe(0.25)
    registry.gauge("nodes_down", cluster="gp").inc()
    snap = registry.snapshot()
    assert snap["counters"] == {"queries_total{backend=pg}": 1}
    assert snap["gauges"] == {"nodes_down{cluster=gp}": 1}
    assert snap["histograms"]["query_seconds"]["count"] == 1
    assert snap["histograms"]["query_seconds"]["sum"] == 0.25
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("nodes_down")
    gauge.inc()
    gauge.inc()
    gauge.dec()
    assert registry.gauge_value("nodes_down") == 1
    gauge.set(5)
    assert registry.gauge_value("nodes_down") == 5
    assert registry.gauge_value("never_touched") == 0.0


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def test_profile_rows_in_and_format():
    leaf = OpProfile("Scan")
    leaf.rows_out = 10
    leaf.time_ns = 2_000_000
    root = OpProfile("Filter", children=[leaf])
    root.rows_out = 4
    root.time_ns = 3_000_000
    assert leaf.rows_in is None
    assert root.rows_in == 10
    text = format_profile(root)
    assert "Filter  (actual time=3.000 ms, rows in=10, rows out=4)" in text
    assert text.splitlines()[1].startswith("  Scan")
    d = root.to_dict()
    assert d["rows_in"] == 10 and "rows_in" not in d["children"][0]
    assert "batches" not in d


def test_profile_batches_rendered():
    node = OpProfile("VecScan")
    node.rows_out = 8
    node.batches = 2
    assert "batches=2" in format_profile(node)
    assert node.to_dict()["batches"] == 2


def test_analyze_mode_nests():
    assert not analyze_active()
    with analyze_mode():
        assert analyze_active()
        with analyze_mode():
            assert analyze_active()
        assert analyze_active()
    assert not analyze_active()
