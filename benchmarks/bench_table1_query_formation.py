"""Table I / Figures 2 & 4: incremental query formation per language.

Regenerates the paper's Table I — the op-1..6 dataframe chain rewritten
into SQL++, SQL, MongoDB pipeline stages, and Cypher — and benchmarks the
cost of PolyFrame's query formation itself (pure string rewriting; the
paper's claim is that transformations are free of data movement).
"""

from __future__ import annotations

import pytest

from repro.core.rewrite import RewriteEngine

from conftest import write_result

LANGUAGES = ("sqlpp", "sql", "mongo", "cypher")


def build_chain(language: str) -> dict[str, str]:
    """The Table I operation chain, rewritten for one language."""
    rw = RewriteEngine(language)
    ops: dict[str, str] = {}
    ops["1: af = AFrame('Test', 'Users')"] = rw.apply(
        "q1", namespace="Test", collection="Users"
    )
    ops["2: af['lang']"] = rw.apply(
        "q2",
        subquery=ops["1: af = AFrame('Test', 'Users')"],
        attribute_list=rw.apply("project_attribute", attribute="lang"),
    )
    left = "lang" if language == "mongo" else rw.apply("single_attribute", attribute="lang")
    statement = rw.apply("eq", left=left, right=rw.literal("en"))
    ops["3: af['lang'] == 'en'"] = rw.apply(
        "q9",
        subquery=ops["1: af = AFrame('Test', 'Users')"],
        statement=statement,
        alias="is_eq",
    )
    ops["4: af[af['lang'] == 'en']"] = rw.apply(
        "q6", subquery=ops["1: af = AFrame('Test', 'Users')"], statement=statement
    )
    entries = rw.join_list(
        [rw.apply("project_attribute", attribute=name) for name in ("name", "address")]
    )
    ops["5: ...[['name', 'address']]"] = rw.apply(
        "q2", subquery=ops["4: af[af['lang'] == 'en']"], attribute_list=entries
    )
    ops["6: ....head(10)"] = rw.apply(
        "limit", subquery=ops["5: ...[['name', 'address']]"], num=10
    )
    return ops


@pytest.mark.parametrize("language", LANGUAGES)
def test_query_formation_speed(benchmark, language):
    """Time the full 6-operation rewrite chain (no database involved)."""
    chain = benchmark(build_chain, language)
    assert len(chain) == 6


def test_emit_table1(benchmark, results_dir):
    """Regenerate Table I (all four languages) and persist it."""

    def build_all() -> str:
        blocks = []
        for language in LANGUAGES:
            blocks.append(f"--- {language} ---")
            for op, query in build_chain(language).items():
                blocks.append(f"[{op}]")
                blocks.append(query)
                blocks.append("")
        return "\n".join(blocks)

    table = benchmark(build_all)
    write_result(results_dir, "table1_query_formation.txt", table)
