"""Real parallel speedup: thread dispatch vs. serial dispatch, 1/2/4 shards.

Figure 9's speedup curve comes from the serial dispatcher's *simulated*
wall time (``max`` over shards).  This bench measures the real thing: the
same query batch on the same clusters, timed with the wall clock, under
``dispatch='serial'`` (shards run one after another) and
``dispatch='threads'`` (shards genuinely overlap on a worker pool).

Each node's ``query_prep_overhead`` is raised well above the default so
the per-shard work is dominated by real, GIL-releasing sleep — that is
what an N-node cluster overlaps, and what makes measured thread-mode
speedup honest rather than an artifact of Python-level timing noise.

Writes ``benchmarks/results/parallel_speedup.json`` with the wall time of
every (shards, mode) cell and the derived speedups; thread dispatch must
beat serial by at least 1.5x at 4 shards.
"""

from __future__ import annotations

import json
import time

from repro.bench import build_cluster_systems

from conftest import write_result

NODE_COUNTS = (1, 2, 4)
NUM_RECORDS = 400
#: Per-query per-node prep cost (seconds) — high enough that a 4-shard
#: serial query (4x this) towers over thread-pool scheduling overhead.
PREP_OVERHEAD = 0.015
#: Queries per timing cell.
BATCH = 8

QUERIES = (
    "SELECT COUNT(*) FROM (SELECT * FROM Bench.data) t",
    'SELECT MAX("unique1"), MIN("unique1") FROM (SELECT * FROM Bench.data) t',
    'SELECT "ten", COUNT("ten") AS c FROM (SELECT * FROM Bench.data) t GROUP BY "ten"',
    'SELECT AVG("four") FROM (SELECT * FROM Bench.data) t',
)


def _build_cluster(num_nodes: int, mode: str):
    systems = build_cluster_systems(
        num_nodes,
        NUM_RECORDS,
        which=("PolyFrame-Greenplum",),
        dispatch=mode,
        query_prep_overhead=PREP_OVERHEAD,
    )
    return systems["PolyFrame-Greenplum"].engine


def _time_batch(cluster) -> float:
    """Measured wall seconds to run the query batch once."""
    started = time.perf_counter()
    for _ in range(BATCH // len(QUERIES)):
        for query in QUERIES:
            cluster.execute(query)
    return time.perf_counter() - started


def run_curve() -> dict:
    cells: dict[str, dict[str, float]] = {}
    answers: dict[str, list] = {}
    for nodes in NODE_COUNTS:
        cells[str(nodes)] = {}
        for mode in ("serial", "threads"):
            cluster = _build_cluster(nodes, mode)
            cluster.execute(QUERIES[0])  # warm the pool / caches
            cells[str(nodes)][mode] = _time_batch(cluster)
            answers.setdefault(str(nodes), []).append(
                [cluster.execute(q).records for q in QUERIES]
            )
    speedups = {
        nodes: timings["serial"] / timings["threads"]
        for nodes, timings in cells.items()
    }
    # Both modes answered identically at every node count — the speedup
    # is not bought with wrong answers.
    for nodes, (serial_answers, thread_answers) in answers.items():
        assert serial_answers == thread_answers, f"answers diverged at {nodes} shards"
    return {
        "records": NUM_RECORDS,
        "queries_per_cell": BATCH,
        "query_prep_overhead": PREP_OVERHEAD,
        "wall_seconds": cells,
        "speedup_threads_over_serial": speedups,
    }


def test_parallel_speedup(benchmark, results_dir):
    payload = benchmark.pedantic(run_curve, rounds=1, iterations=1)
    write_result(results_dir, "parallel_speedup.json", json.dumps(payload, indent=2))

    speedups = payload["speedup_threads_over_serial"]
    # One shard has nothing to overlap: both modes run the same work
    # inline, so the ratio stays near 1.
    assert 0.5 < speedups["1"] < 2.0, speedups
    # Four shards of real sleep overlap on the pool: thread dispatch must
    # beat serial by a wide, honest margin.
    assert speedups["4"] >= 1.5, speedups
    # And more shards means more overlap to win back.
    assert speedups["4"] > speedups["2"] * 0.8, speedups
