"""Figure 9: speedup, 1-4 nodes, fixed XL-sized data.

Runs PolyFrame on the AsterixDB, MongoDB, and Greenplum cluster simulations
(Neo4j community edition has no sharded clustering, as in the paper).
Expression 12 on sharded MongoDB is reported 'unsupported', also per the
paper.  The Greenplum exceptions — no index-only MIN/MAX (expressions 6/7),
no backward index scan (expression 9) — carry over from its PostgreSQL-9.5
feature set.
"""

from __future__ import annotations

import pytest

from repro.bench import EXPRESSIONS, build_cluster_systems, run_suite
from repro.bench.report import format_speedup_table, speedup_series
from repro.bench.runner import STATUS_OK, STATUS_UNSUPPORTED

from conftest import BENCH_XS, write_result

SPEEDUP_RECORDS = BENCH_XS * 5  # a scaled-down XL (loading 8 cluster
# configurations dominates bench time at full XL scale)
NODE_COUNTS = (1, 2, 3, 4)


def run_speedup(params):
    import gc

    from repro.bench.systems import CLUSTER_SYSTEMS

    # One system at a time (see the fig10 note on allocator pressure).
    by_nodes: dict[int, list] = {nodes: [] for nodes in NODE_COUNTS}
    for which in CLUSTER_SYSTEMS:
        for nodes in NODE_COUNTS:
            systems = build_cluster_systems(nodes, SPEEDUP_RECORDS, which=(which,))
            by_nodes[nodes].extend(
                run_suite(systems, EXPRESSIONS, params, dataset=f"{nodes}n")
            )
            del systems
            gc.collect()
    return by_nodes


def test_fig9_speedup(benchmark, params, results_dir):
    by_nodes = benchmark.pedantic(run_speedup, args=(params,), rounds=1, iterations=1)
    table = format_speedup_table(by_nodes)
    write_result(results_dir, "fig9_speedup.txt", table)

    # Sharded MongoDB cannot run the join (expression 12).
    for nodes in NODE_COUNTS[1:]:
        mongo_12 = next(
            m for m in by_nodes[nodes]
            if m.system == "PolyFrame-MongoDB" and m.expression_id == 12
        )
        assert mongo_12.status == STATUS_UNSUPPORTED

    # Scan-bound expressions speed up with more nodes.
    series = speedup_series(by_nodes)
    for system, scan_expr in (
        ("PolyFrame-Greenplum", 1),   # COUNT(*) table scan
        ("PolyFrame-MongoDB", 1),     # pipeline $count scan
        ("PolyFrame-Greenplum", 4),   # group-by scan
    ):
        four_node = series[system][scan_expr].get(4)
        assert four_node is not None and four_node > 1.5, (system, scan_expr, four_node)

    # Greenplum (PostgreSQL 9.5) scans where single-node PostgreSQL 12 used
    # index-only / backward-index plans: verify via engine stats.
    systems = build_cluster_systems(1, 2000, which=("PolyFrame-Greenplum",))
    greenplum = systems["PolyFrame-Greenplum"].engine
    max_result = greenplum.execute('SELECT MAX("unique1") FROM (SELECT * FROM Bench.data) t')
    assert max_result.stats.heap_fetches > 0  # expressions 6/7: no index-only
    sort_result = greenplum.execute(
        "SELECT * FROM (SELECT * FROM Bench.data) t ORDER BY \"unique1\" DESC LIMIT 5"
    )
    assert sort_result.stats.full_scans >= 1  # expression 9: table scan
