"""Table II: the Wisconsin benchmark dataset.

Regenerates the attribute specification (verified against generated data)
and benchmarks generation + JSON serialization throughput.
"""

from __future__ import annotations

from repro.wisconsin import WISCONSIN_ATTRIBUTES, WisconsinGenerator, wisconsin_records

from conftest import BENCH_XS, write_result

SPEC_ROWS = (
    ("unique1", "0..MAX-1", "unique, random"),
    ("unique2", "0..MAX-1", "unique, sequential (declared key)"),
    ("two", "0..1", "unique1 mod 2"),
    ("four", "0..3", "unique1 mod 4"),
    ("ten", "0..9", "unique1 mod 10"),
    ("twenty", "0..19", "unique1 mod 20"),
    ("onePercent", "0..99", "unique1 mod 100"),
    ("tenPercent", "0..9", "unique1 mod 10 (10% missing)"),
    ("twentyPercent", "0..4", "unique1 mod 5"),
    ("fiftyPercent", "0..1", "unique1 mod 2"),
    ("unique3", "0..MAX-1", "unique1"),
    ("evenOnePercent", "0,2,..,198", "onePercent * 2"),
    ("oddOnePercent", "1,3,..,199", "(onePercent * 2) + 1"),
    ("stringu1", "per template", "derived from unique1"),
    ("stringu2", "per template", "derived from unique2"),
    ("string4", "per template", "cyclic: A, H, O, V"),
)


def test_generation_throughput(benchmark):
    records = benchmark(wisconsin_records, BENCH_XS)
    assert len(records) == BENCH_XS


def test_json_serialization(benchmark, tmp_path):
    generator = WisconsinGenerator(BENCH_XS)
    path = tmp_path / "w.json"
    written = benchmark(generator.write_json, path)
    assert written > 0


def test_emit_table2(benchmark, results_dir):
    def build() -> str:
        records = wisconsin_records(1000)
        lines = [f"{'attribute':<16} {'domain':<14} value", "-" * 60]
        for name, domain, law in SPEC_ROWS:
            lines.append(f"{name:<16} {domain:<14} {law}")
        # Verify the spec against generated data as part of the report.
        assert set(WISCONSIN_ATTRIBUTES) == {row[0] for row in SPEC_ROWS}
        sample = records[0]
        lines.append("")
        lines.append(f"verified on 1000 generated records; sample: unique1={sample['unique1']}")
        missing = sum(1 for record in records if "tenPercent" not in record)
        lines.append(f"records with missing tenPercent: {missing} (10%)")
        return "\n".join(lines)

    write_result(results_dir, "table2_wisconsin_spec.txt", benchmark(build))
