"""Ablation: lazy composition vs eagerly materializing every step.

PolyFrame's lazy evaluation sends one composed query per action.  The
alternative — what a naive eager client would do — executes and fetches
every intermediate dataframe.  This bench runs the paper's Table I chain
(filter → project → head) both ways against the SQL engine and reports the
gap, isolating the benefit the paper attributes to lazy evaluation.
"""

from __future__ import annotations

import pytest

from repro import PolyFrame, PostgresConnector
from repro.sqlengine import SQLDatabase
from repro.wisconsin import loaders, wisconsin_records

from conftest import BENCH_XS, write_result


@pytest.fixture(scope="module")
def connector():
    db = SQLDatabase()
    loaders.load_postgres(db, "Bench", "data", wisconsin_records(BENCH_XS))
    return PostgresConnector(db)


def lazy_chain(connector) -> int:
    """One composed query; the database sees the whole intent."""
    af = PolyFrame("Bench", "data", connector)
    return len(af[af["ten"] == 4][["unique1", "ten"]].head(5))


def eager_chain(connector) -> int:
    """Materialize every intermediate result, as eager evaluation would."""
    af = PolyFrame("Bench", "data", connector)
    base = af.collect()                             # step 1: whole dataset
    mask = [record["ten"] == 4 for record in base.to_records()]
    filtered = base[base["ten"] == 4]               # step 2: full filter
    projected = filtered[["unique1", "ten"]]        # step 3: full projection
    assert len(mask) == len(base)
    return len(projected.head(5))


def test_lazy_chain(benchmark, connector):
    assert benchmark(lazy_chain, connector) == 5


def test_eager_chain(benchmark, connector):
    assert benchmark(eager_chain, connector) == 5


def test_emit_lazy_vs_eager(benchmark, connector, results_dir):
    import time

    def compare() -> str:
        started = time.perf_counter()
        lazy_chain(connector)
        lazy_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        eager_chain(connector)
        eager_elapsed = time.perf_counter() - started
        assert lazy_elapsed < eager_elapsed
        return "\n".join(
            [
                "Lazy vs eager evaluation of the Table I chain (filter → project → head(5))",
                "",
                f"lazy (one composed query):        {lazy_elapsed * 1000:9.2f}ms",
                f"eager (materialize every step):   {eager_elapsed * 1000:9.2f}ms",
                f"lazy advantage:                   {eager_elapsed / lazy_elapsed:9.1f}x",
            ]
        )

    write_result(results_dir, "ablation_lazy_vs_eager.txt", benchmark.pedantic(compare, rounds=1))
