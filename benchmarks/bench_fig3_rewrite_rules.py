"""Figure 3: sample language-specific rewrite rules.

Regenerates the paper's sample-rule table (dataset anchor, aggregate
wrapper, and the five aggregate functions per language) and benchmarks
single-rule application — the unit cost of PolyFrame's translation layer.
"""

from __future__ import annotations

import pytest

from repro.core.rewrite import RewriteEngine, load_builtin

from conftest import write_result

LANGUAGES = ("sqlpp", "sql", "mongo", "cypher")
FIG3_RULES = ("q1", "q7", "min", "max", "avg", "count", "std")
FIG3_LABELS = {
    "q1": "records",
    "q7": "Return an attribute aggregate",
    "min": "Minimum",
    "max": "Maximum",
    "avg": "Average",
    "count": "Count",
    "std": "Standard deviation",
}


@pytest.mark.parametrize("language", LANGUAGES)
def test_single_rule_application(benchmark, language):
    engine = RewriteEngine(language)
    result = benchmark(engine.apply, "min", attribute="age")
    assert "age" in result


def test_aggregate_composition(benchmark):
    """Compose q1 + q7 + min, the paper's walked-through example."""
    engine = RewriteEngine("sqlpp")

    def compose() -> str:
        anchor = engine.apply("q1", namespace="Test", collection="Users")
        agg = engine.apply("min", attribute="age")
        return engine.apply("q7", subquery=anchor, agg_func=agg, agg_alias="min_age")

    query = benchmark(compose)
    assert query == "SELECT MIN(age) FROM (SELECT VALUE t FROM Test.Users t) t"


def test_emit_fig3(benchmark, results_dir):
    def build_table() -> str:
        lines = []
        for rule_name in FIG3_RULES:
            lines.append(f"== {FIG3_LABELS[rule_name]} ({rule_name}) ==")
            for language in LANGUAGES:
                rules = load_builtin(language)
                template = rules[rule_name].template.replace("\n", " ")
                lines.append(f"  {language:7}  {template}")
            lines.append("")
        return "\n".join(lines)

    table = benchmark(build_table)
    write_result(results_dir, "fig3_rewrite_rules.txt", table)
