"""Figure 8: expressions 11-13 across dataset sizes XS-XL.

Shape targets:

- expression 12: AsterixDB's index-only join beats the index nested-loop
  variants;
- expression 13: PostgreSQL answers ``isna()`` from its index (NULLs are
  recorded there), while AsterixDB/MongoDB/Neo4j must scan.
"""

from __future__ import annotations

from repro.bench.expressions import EXPRESSIONS
from repro.bench.report import format_scaling_table

from bench_fig6_exp1_5_scaling import SIZE_NAMES, assert_oom_pattern, run_scaling
from conftest import write_result

EXPRS = tuple(expr for expr in EXPRESSIONS if 11 <= expr.id <= 13)


def test_fig8_scaling(benchmark, systems_by_size, params, results_dir):
    measurements = benchmark.pedantic(
        run_scaling, args=(systems_by_size, params, EXPRS), rounds=1, iterations=1
    )
    assert_oom_pattern(measurements)
    total = format_scaling_table(
        measurements, timing="total", title="Fig 8 — expressions 11-13, total runtimes"
    )
    expr_only = format_scaling_table(
        measurements, timing="expression",
        title="Fig 8 — expressions 11-13, expression-only runtimes",
    )
    write_result(results_dir, "fig8_exp11_13_scaling.txt", total + "\n\n" + expr_only)

    by_key = {(m.system, m.dataset, m.expression_id): m for m in measurements}

    # Expression 12: AsterixDB's index-only join wins at every size.
    for size in SIZE_NAMES:
        asterix = by_key[("PolyFrame-AsterixDB", size, 12)].expression_seconds
        for other in ("PolyFrame-PostgreSQL", "PolyFrame-MongoDB", "PolyFrame-Neo4j"):
            assert asterix < by_key[(other, size, 12)].expression_seconds, (size, other)

    # Expression 13: PostgreSQL's null-bearing index beats the scanners.
    for size in SIZE_NAMES:
        postgres = by_key[("PolyFrame-PostgreSQL", size, 13)].expression_seconds
        for other in ("PolyFrame-AsterixDB", "PolyFrame-MongoDB", "PolyFrame-Neo4j"):
            assert postgres < by_key[(other, size, 13)].expression_seconds, (size, other)
