"""Availability under node-loss chaos: replicated vs. single-copy clusters.

Runs all 13 Table III expressions on every sharded backend twice — once
healthy, once with a seeded permanent single-node outage — with
``replication_factor=2``.  The replicated run must answer every
expression with status ``'ok'`` (never partial, never an error) and
byte-identical results, paying only failovers.  A single-copy (R=1)
control under the same outage loses its queries, which is exactly the
seed behaviour this layer removes.

Writes ``benchmarks/results/availability.json`` with the raw
measurements of both runs (the ``failovers`` column separates them).
"""

from __future__ import annotations

import json

import pytest

from repro.bench import EXPRESSIONS, build_cluster_systems, run_suite
from repro.bench.export import measurements_to_dicts
from repro.bench.runner import STATUS_OK, STATUS_UNSUPPORTED
from repro.errors import ShardFailureError
from repro.resilience import FaultInjector, RetryPolicy, no_sleep

from conftest import write_result

NUM_NODES = 3
NUM_RECORDS = 2000
DEAD_NODE = 1


def chaos_injector() -> FaultInjector:
    injector = FaultInjector(sleep=no_sleep)
    injector.node_down(DEAD_NODE)
    return injector


def build(injector=None, *, replication_factor=2):
    return build_cluster_systems(
        NUM_NODES,
        NUM_RECORDS,
        replication_factor=replication_factor,
        fault_injector=injector if injector is not None else FaultInjector(sleep=no_sleep),
        retry_policy=RetryPolicy(3, sleep=no_sleep),
    )


def run_availability(params):
    healthy = run_suite(build(), EXPRESSIONS, params, dataset="healthy")
    chaos = run_suite(build(chaos_injector()), EXPRESSIONS, params, dataset="node_down")
    return healthy, chaos


def test_availability_under_node_outage(benchmark, params, results_dir):
    healthy, chaos = benchmark.pedantic(
        run_availability, args=(params,), rounds=1, iterations=1
    )

    # Every cell that works healthy still works with a node dead: same
    # status, nothing degraded, and at least one failover was paid.
    by_cell = {(m.system, m.expression_id): m for m in healthy}
    failovers_by_system: dict[str, int] = {}
    for m in chaos:
        assert m.status == by_cell[(m.system, m.expression_id)].status
        assert m.status in (STATUS_OK, STATUS_UNSUPPORTED), m
        assert not m.degraded, m
        failovers_by_system[m.system] = failovers_by_system.get(m.system, 0) + m.failovers
    # Each cluster fails over at least once; after that the health board
    # routes shard 1's reads straight to the surviving replica, so the
    # remaining expressions pay nothing (adaptive routing, not luck).
    for system, failovers in failovers_by_system.items():
        assert failovers >= 1, f"{system} never failed over"

    payload = json.dumps(
        measurements_to_dicts(healthy) + measurements_to_dicts(chaos), indent=2
    )
    write_result(results_dir, "availability.json", payload)


def test_single_copy_control_loses_queries(params):
    """R=1 under the same outage fails — the seed config is not available."""
    systems = build(chaos_injector(), replication_factor=1)
    greenplum = systems["PolyFrame-Greenplum"]
    df, _ = greenplum.create_frames()
    with pytest.raises(ShardFailureError):
        len(df)
