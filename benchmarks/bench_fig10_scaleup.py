"""Figure 10: scaleup — data grows in proportion to the cluster.

Scaleup(N) = T(1 node, 1x data) / T(N nodes, Nx data); 1.0 is ideal.  The
paper's finding: no single system wins every task, but all three systems
operate at scale as the workload grows with the machines.
"""

from __future__ import annotations

import gc

from repro.bench import EXPRESSIONS, build_cluster_systems, run_suite
from repro.bench.report import format_scaleup_table, scaleup_series
from repro.bench.runner import STATUS_OK
from repro.bench.systems import CLUSTER_SYSTEMS

from conftest import BENCH_XS, write_result

BASE_RECORDS = BENCH_XS * 5  # scaled-down XL per node (see fig9 note)
NODE_COUNTS = (1, 2, 3, 4)
#: Expressions whose per-shard work scales with shard size (full scans).
SCAN_BOUND = (4, 13)


def run_scaleup(params):
    # Build, measure, and release one system at a time: holding three
    # clusters at four data scales simultaneously inflates every timing
    # with allocator/GC pressure.
    by_nodes: dict[int, list] = {nodes: [] for nodes in NODE_COUNTS}
    for which in CLUSTER_SYSTEMS:
        for nodes in NODE_COUNTS:
            systems = build_cluster_systems(
                nodes, BASE_RECORDS * nodes, which=(which,)
            )
            by_nodes[nodes].extend(
                run_suite(systems, EXPRESSIONS, params, dataset=f"{nodes}n")
            )
            del systems
            gc.collect()
    return by_nodes


def test_fig10_scaleup(benchmark, params, results_dir):
    by_nodes = benchmark.pedantic(run_scaleup, args=(params,), rounds=1, iterations=1)
    table = format_scaleup_table(by_nodes)
    write_result(results_dir, "fig10_scaleup.txt", table)

    # All systems complete every runnable expression at every scale.
    for nodes, measurements in by_nodes.items():
        for m in measurements:
            if m.system == "PolyFrame-MongoDB" and m.expression_id == 12 and nodes > 1:
                continue  # unsupported sharded join, as in the paper
            assert m.status == STATUS_OK, (m.system, nodes, m.expression_id)

    # Scan-bound expressions hold scaleup reasonably close to ideal: 4x the
    # data on 4x the nodes should not take wildly longer than 1x on 1 node.
    # Individual cells are single-shot and jittery at bench scale, so the
    # gate is the per-system mean over the scan-bound set.
    series = scaleup_series(by_nodes)
    for system in ("PolyFrame-Greenplum", "PolyFrame-MongoDB", "PolyFrame-AsterixDB"):
        values = [
            series[system][expr_id][4]
            for expr_id in SCAN_BOUND
            if 4 in series[system].get(expr_id, {})
        ]
        assert values, system
        mean = sum(values) / len(values)
        assert mean > 0.35, (system, values)
