"""Hot-query speedup from the semantic result cache, with asserted parity.

The cache's performance claim: a repeated ("hot") query over unchanged
data is served from the connector's :class:`ResultCache` without
touching the backend, and the served answer is byte-identical to the
executed one.  This bench runs an aggregation that scans every row of a
Wisconsin dataset on the embedded SQL engine — expensive to execute,
tiny to store — cold once and hot (min of 3) from cache, and checks:

- the hot query is at least ``MIN_SPEEDUP``x faster than the cold one;
- cold and hot answers are byte-identical;
- the hit is recorded end to end: ``QueryStats.result_cache_hits``,
  ``SendRecord.cache_hits``, and the bench ``Measurement``'s
  ``cache_hits`` column (present in the JSON/CSV export).

Writes ``benchmarks/results/result_cache.json``.
"""

from __future__ import annotations

import json
import time

from repro import PolyFrame, PostgresConnector
from repro.bench.expressions import EXPRESSIONS, benchmark_params
from repro.bench.export import to_json
from repro.bench.runner import run_expression
from repro.bench.systems import SystemUnderTest
from repro.sqlengine import SQLDatabase
from repro.wisconsin import loaders, wisconsin_records

from conftest import write_result

NUM_RECORDS = 60_000
#: The acceptance floor for cold-over-hot wall time.
MIN_SPEEDUP = 5.0
#: Scans all rows, returns ten groups: worst case for execution, best
#: case for storage — exactly the shape a result cache pays off on.
HOT_QUERY = (
    'SELECT t."ten" AS k, COUNT(*) AS n, SUM(t."four") AS s '
    'FROM Bench.data t GROUP BY t."ten"'
)


def _build() -> tuple[SQLDatabase, PostgresConnector]:
    db = SQLDatabase(name="postgres")
    loaders.load_postgres(db, "Bench", "data", wisconsin_records(NUM_RECORDS))
    loaders.load_postgres(db, "Bench", "data2", wisconsin_records(NUM_RECORDS))
    return db, PostgresConnector(db, cache=True)


def run_cache_bench() -> dict:
    db, connector = _build()

    started = time.perf_counter()
    cold = connector.send(HOT_QUERY, "data")
    cold_seconds = time.perf_counter() - started
    assert cold.stats.result_cache_misses == 1

    hot_seconds = float("inf")
    hot = None
    for _ in range(3):
        started = time.perf_counter()
        hot = connector.send(HOT_QUERY, "data")
        hot_seconds = min(hot_seconds, time.perf_counter() - started)

    # Parity and a recorded hit, at every layer that reports one.
    assert hot.records == cold.records, "cached answer diverged"
    assert hot.stats.result_cache_hits == 1
    assert connector.send_log[-1].cache_hits == 1
    assert connector.result_cache.stats()["hits"] == 3

    speedup = cold_seconds / hot_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"hot query only {speedup:.1f}x faster than cold "
        f"({cold_seconds * 1e3:.2f} ms vs {hot_seconds * 1e3:.2f} ms)"
    )

    # The same story through the bench harness: the second measurement
    # of one expression must carry the hit into the Measurement export.
    system = SystemUnderTest(
        "PolyFrame-PostgreSQL",
        "polyframe",
        lambda: (
            PolyFrame("Bench", "data", connector),
            PolyFrame("Bench", "data2", connector),
        ),
        engine=db,
        connector=connector,
    )
    params = benchmark_params()
    expression = next(e for e in EXPRESSIONS if e.id == 4)
    measure_cold = run_expression(system, expression, params, dataset="bench")
    measure_hot = run_expression(system, expression, params, dataset="bench")
    assert measure_hot.cache_hits >= 1, "Measurement lost the cache hit"
    assert measure_hot.expression_seconds < measure_cold.expression_seconds
    exported = json.loads(to_json([measure_cold, measure_hot]))
    assert exported[1]["cache_hits"] >= 1

    return {
        "records": NUM_RECORDS,
        "query": HOT_QUERY,
        "cold_seconds": cold_seconds,
        "hot_seconds": hot_seconds,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "rows_returned": len(cold.records),
        "cache": connector.result_cache.stats(),
        "measurements": exported,
    }


def test_result_cache_speedup(benchmark, results_dir):
    payload = benchmark.pedantic(run_cache_bench, rounds=1, iterations=1)
    write_result(results_dir, "result_cache.json", json.dumps(payload, indent=2))
    assert payload["speedup"] >= payload["min_speedup"]
    assert payload["cache"]["hits"] >= 3
