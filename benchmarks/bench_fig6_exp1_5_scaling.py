"""Figure 6: expressions 1-5 across dataset sizes XS-XL.

Pandas must complete XS and S but fail with out-of-memory on M, L, and XL;
every PolyFrame variant completes all sizes.
"""

from __future__ import annotations

from repro.bench import benchmark_params, run_suite
from repro.bench.expressions import EXPRESSIONS
from repro.bench.report import format_scaling_table
from repro.bench.runner import STATUS_OK, STATUS_OOM

from conftest import write_result

EXPRS = tuple(expr for expr in EXPRESSIONS if 1 <= expr.id <= 5)
SIZE_NAMES = ("XS", "S", "M", "L", "XL")


def run_scaling(systems_by_size, params, exprs):
    measurements = []
    for size in SIZE_NAMES:
        systems = systems_by_size(size)
        measurements.extend(run_suite(systems, exprs, params, dataset=size))
    return measurements


def assert_oom_pattern(measurements):
    """Paper: Pandas OOMs on M/L/XL; PolyFrame completes everything."""
    for m in measurements:
        if m.system == "Pandas" and m.dataset in ("M", "L", "XL"):
            assert m.status == STATUS_OOM, (m.system, m.dataset, m.expression_id)
        elif m.system == "Pandas":
            assert m.status == STATUS_OK, (m.dataset, m.expression_id)
        else:
            assert m.status == STATUS_OK, (m.system, m.dataset, m.expression_id)


def test_fig6_scaling(benchmark, systems_by_size, params, results_dir):
    measurements = benchmark.pedantic(
        run_scaling, args=(systems_by_size, params, EXPRS), rounds=1, iterations=1
    )
    assert_oom_pattern(measurements)
    total = format_scaling_table(
        measurements, timing="total", title="Fig 6 — expressions 1-5, total runtimes"
    )
    expr_only = format_scaling_table(
        measurements, timing="expression",
        title="Fig 6 — expressions 1-5, expression-only runtimes",
    )
    write_result(results_dir, "fig6_exp1_5_scaling.txt", total + "\n\n" + expr_only)

    # Expression 1 shape: Neo4j fastest at every size (count store).
    by_key = {(m.system, m.dataset, m.expression_id): m for m in measurements}
    for size in SIZE_NAMES:
        neo = by_key[("PolyFrame-Neo4j", size, 1)].expression_seconds
        for other in ("PolyFrame-MongoDB", "PolyFrame-PostgreSQL"):
            assert neo < by_key[(other, size, 1)].expression_seconds, (size, other)
