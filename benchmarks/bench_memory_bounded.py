"""Memory-bounded execution: bounded peak, identical answers, 100k rows.

The streaming/spill layer's contract is that a per-query memory budget
bounds how much the operator pipeline holds (sorts spill sorted runs,
group-bys spill accumulator tables) without changing a single record of
the answer.  This bench runs a full external-merge sort and a
wide-key aggregation over 100k Wisconsin rows on the embedded SQL
engine, once unbounded and once under a budget orders of magnitude
smaller than the data, and checks both halves of the contract:

- the budgeted run's accounted peak stays within the budget plus a
  one-record slack, and it actually spilled;
- its streamed records are byte-identical to the unbounded run's.

Writes ``benchmarks/results/memory_bounded.json`` with the peak/spill
accounting and wall time of every (query, budget) cell.
"""

from __future__ import annotations

import json
import time

from repro.sqlengine import SQLDatabase
from repro.wisconsin import loaders, wisconsin_records

from conftest import write_result

NUM_RECORDS = 100_000
#: Far below the dataset's in-memory footprint (~tens of MB), far above
#: a single record: every sort and group table must spill.
BUDGET_BYTES = 1 * 1024 * 1024
#: Headroom for the one record held while the budget check trips.
SLACK_BYTES = 16 * 1024

QUERIES = {
    # A full sort with no LIMIT: the sort buffer would hold all 100k
    # rows, so the sorter must write sorted runs and k-way merge them.
    "sort": 'SELECT * FROM Bench.data t ORDER BY t."ten", t."unique2" DESC',
    # One group per row (unique1 is a key): the accumulator table grows
    # with the input and must spill whole tables, merged at finalize.
    "groupby": (
        'SELECT t."unique1" AS k, COUNT(*) AS n, SUM(t."four") AS s '
        'FROM Bench.data t GROUP BY t."unique1"'
    ),
}


def _build(budget: int | None) -> SQLDatabase:
    db = SQLDatabase(name="postgres", memory_budget=budget)
    loaders.load_postgres(db, "Bench", "data", wisconsin_records(NUM_RECORDS),
                          indexes=False)
    return db


def run_bounded() -> dict:
    free_db = _build(None)
    tiny_db = _build(BUDGET_BYTES)
    cells: dict[str, dict] = {}
    for name, query in QUERIES.items():
        started = time.perf_counter()
        expected = free_db.execute(query).records
        free_seconds = time.perf_counter() - started

        started = time.perf_counter()
        result = tiny_db.execute(query, stream=True)
        records = list(result.iter_records())
        tiny_seconds = time.perf_counter() - started

        assert records == expected, f"{name}: budgeted answer diverged"
        stats = result.stats
        assert stats.spill_bytes > 0, f"{name}: the budget never engaged"
        assert stats.peak_mem_bytes <= BUDGET_BYTES + SLACK_BYTES, (
            f"{name}: peak {stats.peak_mem_bytes} exceeds "
            f"{BUDGET_BYTES} + {SLACK_BYTES}"
        )
        cells[name] = {
            "rows": len(records),
            "unbounded_seconds": free_seconds,
            "bounded_seconds": tiny_seconds,
            "peak_mem_bytes": stats.peak_mem_bytes,
            "spill_bytes": stats.spill_bytes,
            "spill_runs": stats.spill_runs,
        }
    return {
        "records": NUM_RECORDS,
        "budget_bytes": BUDGET_BYTES,
        "slack_bytes": SLACK_BYTES,
        "cells": cells,
    }


def test_memory_bounded(benchmark, results_dir):
    payload = benchmark.pedantic(run_bounded, rounds=1, iterations=1)
    write_result(results_dir, "memory_bounded.json", json.dumps(payload, indent=2))

    for name, cell in payload["cells"].items():
        # The contract the run_bounded asserts record-by-record, restated
        # on the exported numbers: bounded peak, real spill volume.
        assert cell["peak_mem_bytes"] <= payload["budget_bytes"] + payload["slack_bytes"]
        assert cell["spill_bytes"] > 0, name
        assert cell["spill_runs"] > 0, name
