"""Ablation: the paper's optimizer requirement, quantified.

*"Another important requirement that any of AFrame's target database
systems must satisfy is an efficient query optimizer.  Executing subqueries
without any optimization could result in unnecessary data scans that would
significantly affect performance."*

This bench runs PolyFrame's deeply nested expression-3 query on the SQL
engine with the optimizer fully enabled vs with subquery flattening and
index selection disabled, and reports the gap.
"""

from __future__ import annotations

import pytest

from repro.sqlengine import OptimizerFeatures, SQLDatabase
from repro.wisconsin import loaders, wisconsin_records

from conftest import BENCH_XS, write_result

NESTED_QUERY = (
    "SELECT COUNT(*) FROM (SELECT * FROM (SELECT * FROM Bench.data) t "
    'WHERE "ten" = 4 AND "twentyPercent" = 2 AND "two" = 0) t'
)


def _load(features: OptimizerFeatures) -> SQLDatabase:
    db = SQLDatabase(features)
    loaders.load_postgres(db, "Bench", "data", wisconsin_records(BENCH_XS))
    return db


@pytest.fixture(scope="module")
def optimized():
    return _load(OptimizerFeatures.postgres())


@pytest.fixture(scope="module")
def unoptimized():
    return _load(OptimizerFeatures.unoptimized())


def test_optimized_nested_query(benchmark, optimized):
    result = benchmark(optimized.execute, NESTED_QUERY)
    assert result.scalar() >= 0


def test_unoptimized_nested_query(benchmark, unoptimized):
    result = benchmark(unoptimized.execute, NESTED_QUERY)
    assert result.scalar() >= 0


def test_emit_ablation_report(benchmark, optimized, unoptimized, results_dir):
    def compare() -> str:
        fast = optimized.execute(NESTED_QUERY)
        slow = unoptimized.execute(NESTED_QUERY)
        assert fast.scalar() == slow.scalar()
        lines = [
            "Optimizer ablation: PolyFrame's nested expression-3 query",
            "",
            f"{'configuration':<28} {'elapsed':>12} {'heap fetches':>14} {'index entries':>14}",
            "-" * 72,
            (
                f"{'optimized (PostgreSQL 12)':<28} {fast.elapsed_seconds * 1000:>10.2f}ms "
                f"{fast.stats.heap_fetches:>14} {fast.stats.index_entries:>14}"
            ),
            (
                f"{'no flattening / no indexes':<28} {slow.elapsed_seconds * 1000:>10.2f}ms "
                f"{slow.stats.heap_fetches:>14} {slow.stats.index_entries:>14}"
            ),
            "",
            f"speedup from optimization: {slow.elapsed_seconds / fast.elapsed_seconds:.1f}x",
        ]
        # The optimized plan touches far fewer records.
        assert fast.stats.heap_fetches < slow.stats.heap_fetches
        assert fast.elapsed_seconds < slow.elapsed_seconds
        return "\n".join(lines)

    write_result(results_dir, "ablation_optimizer.txt", benchmark.pedantic(compare, rounds=1))
