"""Figure 5: XS single-node results, total and expression-only timings.

Runs all 13 expressions on Pandas and the four PolyFrame variants at XS
scale, plus the 'Empty' dataset baseline for expressions 2 and 10 that the
paper uses to expose fixed query-preparation overheads (AsterixDB's being
the largest).
"""

from __future__ import annotations

from repro.bench import EXPRESSIONS, build_systems, run_suite
from repro.bench.expressions import expression
from repro.bench.report import format_expression_table
from repro.bench.runner import run_expression

from conftest import BENCH_XS, write_result


def test_fig5_xs_all_systems(benchmark, systems_by_size, params, results_dir):
    systems = systems_by_size("XS")

    def run():
        return run_suite(systems, EXPRESSIONS, params, dataset="XS")

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    total = format_expression_table(
        measurements, timing="total",
        title=f"Fig 5a/5b — total runtimes, XS ({BENCH_XS} records)",
    )
    expr_only = format_expression_table(
        measurements, timing="expression",
        title=f"Fig 5c/5d — expression-only runtimes, XS ({BENCH_XS} records)",
    )
    from repro.bench.charts import bar_chart

    charts = bar_chart(
        measurements, timing="expression",
        title="Fig 5c/5d as bars (expression-only)",
    )
    write_result(
        results_dir, "fig5_xs_single_node.txt",
        total + "\n\n" + expr_only + "\n\n" + charts,
    )

    # Shape assertions from the paper's Figure 5 discussion.
    by_key = {(m.system, m.expression_id): m for m in measurements}
    pandas_total = by_key[("Pandas", 1)].total_seconds
    poly_systems = (
        "PolyFrame-AsterixDB", "PolyFrame-PostgreSQL",
        "PolyFrame-MongoDB", "PolyFrame-Neo4j",
    )
    for system in poly_systems:
        # Pandas total runtimes significantly higher than all PolyFrame
        # variants (DataFrame creation loads the whole file).
        assert by_key[(system, 1)].total_seconds < pandas_total

    # Expressions 5 and 10: Pandas loses even expression-only.  Margins at
    # this scale are a few hundred microseconds, so compare best-of-3 runs
    # rather than the single table pass.
    def best_of(system_name: str, expr_id: int, rounds: int = 3) -> float:
        return min(
            run_expression(systems[system_name], expression(expr_id), params).expression_seconds
            for _ in range(rounds)
        )

    for expr_id in (5, 10):
        pandas_best = best_of("Pandas", expr_id)
        for system in poly_systems:
            assert best_of(system, expr_id) < pandas_best, (system, expr_id)


def test_fig5_empty_baseline(benchmark, bench_workdir, params, results_dir):
    """The 'Empty' dataset bars for expressions 2 and 10."""
    poly_only = (
        "PolyFrame-AsterixDB", "PolyFrame-PostgreSQL",
        "PolyFrame-MongoDB", "PolyFrame-Neo4j",
    )
    systems = build_systems(0, bench_workdir, which=poly_only)

    def run():
        out = []
        for expr_id in (2, 10):
            for system in systems.values():
                out.append(
                    run_expression(system, expression(expr_id), params, dataset="Empty")
                )
        return out

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_expression_table(
        measurements, timing="total",
        title="Fig 5 'Empty' baseline — fixed query preparation overheads",
    )
    write_result(results_dir, "fig5_empty_baseline.txt", table)

    # AsterixDB's fixed overhead dominates the other systems' (the paper:
    # "especially AsterixDB, which is designed to operate efficiently on
    # big data rather than being fast on 'small' queries").  Compare
    # best-of-3 totals: the quantities are all ~1ms.
    def best_total(system_name: str, expr_id: int, rounds: int = 3) -> float:
        return min(
            run_expression(
                systems[system_name], expression(expr_id), params, dataset="Empty"
            ).total_seconds
            for _ in range(rounds)
        )

    for expr_id in (2, 10):
        asterix = best_total("PolyFrame-AsterixDB", expr_id)
        for other in ("PolyFrame-PostgreSQL", "PolyFrame-MongoDB", "PolyFrame-Neo4j"):
            assert asterix > best_total(other, expr_id)
