"""Figure 7: expressions 6-10 across dataset sizes XS-XL.

Shape targets from the paper's discussion:

- expressions 6/7: PostgreSQL answers via index-only plans, staying
  competitive with Pandas' expression-only time at every size;
- expression 9: MongoDB and PostgreSQL use backward index scans;
- expression 10: lazy evaluation beats Pandas' eager intermediate
  materialization even expression-only.
"""

from __future__ import annotations

from repro.bench import run_suite
from repro.bench.expressions import EXPRESSIONS
from repro.bench.report import format_scaling_table
from repro.bench.runner import STATUS_OK

from bench_fig6_exp1_5_scaling import SIZE_NAMES, assert_oom_pattern, run_scaling
from conftest import write_result

EXPRS = tuple(expr for expr in EXPRESSIONS if 6 <= expr.id <= 10)


def test_fig7_scaling(benchmark, systems_by_size, params, results_dir):
    measurements = benchmark.pedantic(
        run_scaling, args=(systems_by_size, params, EXPRS), rounds=1, iterations=1
    )
    assert_oom_pattern(measurements)
    total = format_scaling_table(
        measurements, timing="total", title="Fig 7 — expressions 6-10, total runtimes"
    )
    expr_only = format_scaling_table(
        measurements, timing="expression",
        title="Fig 7 — expressions 6-10, expression-only runtimes",
    )
    write_result(results_dir, "fig7_exp6_10_scaling.txt", total + "\n\n" + expr_only)

    by_key = {(m.system, m.dataset, m.expression_id): m for m in measurements}

    # Expressions 6/7: PostgreSQL's index-only plans beat the scan-based
    # variants at every size.
    for size in SIZE_NAMES:
        for expr_id in (6, 7):
            postgres = by_key[("PolyFrame-PostgreSQL", size, expr_id)]
            for scanner in ("PolyFrame-MongoDB", "PolyFrame-Neo4j", "PolyFrame-AsterixDB"):
                assert postgres.expression_seconds < by_key[
                    (scanner, size, expr_id)
                ].expression_seconds, (size, expr_id, scanner)

    # Expression 9: backward index scans keep MongoDB/PostgreSQL flat while
    # AsterixDB's full sort grows with the data.
    for size in ("L", "XL"):
        asterix = by_key[("PolyFrame-AsterixDB", size, 9)].expression_seconds
        assert by_key[("PolyFrame-MongoDB", size, 9)].expression_seconds < asterix
        assert by_key[("PolyFrame-PostgreSQL", size, 9)].expression_seconds < asterix

    # Expression 10 (and 5, in Figure 6): Pandas loses even expression-only
    # where it still runs.
    for size in ("XS", "S"):
        pandas = by_key[("Pandas", size, 10)]
        assert pandas.status == STATUS_OK
        for system in (
            "PolyFrame-AsterixDB", "PolyFrame-PostgreSQL",
            "PolyFrame-MongoDB", "PolyFrame-Neo4j",
        ):
            assert by_key[(system, size, 10)].expression_seconds < pandas.expression_seconds
