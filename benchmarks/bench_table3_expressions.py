"""Table III: the 13 DataFrame benchmark expressions.

Regenerates the expression catalog and times each expression on the eager
baseline at XS scale (a smoke-level sanity check that each is runnable;
the real cross-system timing lives in the Figure 5-8 benches).
"""

from __future__ import annotations

import pytest

from repro.bench.expressions import EXPRESSIONS, DataFrameAPI, benchmark_params
from repro.eager import frame_from_records
from repro.wisconsin import wisconsin_records

from conftest import write_result

_RECORDS = wisconsin_records(500)
_DF = frame_from_records(_RECORDS)
_DF2 = frame_from_records(_RECORDS)
_API = DataFrameAPI()
_PARAMS = benchmark_params()


@pytest.mark.parametrize("expr", EXPRESSIONS, ids=lambda e: f"E{e.id}")
def test_expression_on_eager_baseline(benchmark, expr):
    result = benchmark(expr.run, _DF, _DF2, _PARAMS, _API)
    assert result is not None


def test_emit_table3(benchmark, results_dir):
    def build() -> str:
        lines = [f"{'ID':<4} {'Operation':<22} DataFrame Expression", "-" * 90]
        for expr in EXPRESSIONS:
            lines.append(f"{expr.id:<4} {expr.name:<22} {expr.pandas_text}")
        return "\n".join(lines)

    write_result(results_dir, "table3_expressions.txt", benchmark(build))
