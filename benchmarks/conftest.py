"""Shared benchmark fixtures.

Scale control: ``REPRO_BENCH_XS`` sets the XS record count (default 2000);
all other sizes keep the paper's Table IV ratios.  Every figure bench writes
its regenerated table to ``benchmarks/results/`` and prints it, so running

    pytest benchmarks/ --benchmark-only -s

reproduces each table/figure of the paper as text output.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import benchmark_params, build_systems

BENCH_XS = int(os.environ.get("REPRO_BENCH_XS", 3000))
RESULTS_DIR = Path(__file__).parent / "results"

#: Table IV ratios at bench scale.
SIZES = {
    "XS": BENCH_XS,
    "S": int(BENCH_XS * 2.5),
    "M": BENCH_XS * 5,
    "L": int(BENCH_XS * 7.5),
    "XL": BENCH_XS * 10,
}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def params():
    return benchmark_params()


@pytest.fixture(scope="session")
def bench_workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("bench-data")


@pytest.fixture(scope="session")
def systems_by_size(bench_workdir):
    """Systems under test per dataset size, built lazily and cached.

    After each build the live heap is frozen (``gc.freeze``): the loaded
    datasets are static for the rest of the session, and excluding their
    millions of objects from cyclic-GC scans keeps later timing
    measurements from degrading as the cache grows.
    """
    import gc

    cache: dict[str, dict] = {}

    def get(size_name: str):
        if size_name not in cache:
            cache[size_name] = build_systems(
                SIZES[size_name],
                bench_workdir,
                xs_records_for_budget=BENCH_XS,
            )
            gc.collect()
            gc.freeze()
        return cache[size_name]

    return get


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist and print one regenerated table/figure."""
    (results_dir / name).write_text(text + "\n")
    print(f"\n{'=' * 70}\n{name}\n{'=' * 70}\n{text}")
