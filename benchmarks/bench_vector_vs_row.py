"""Vectorized vs row-at-a-time execution on a full-scan workload.

The acceptance workload for the shared execution kernel: a full-scan
filter + aggregate over 100k Wisconsin rows (no usable index, so both
engines read every row).  The row engine walks the expression AST once
per row; the vector engine dispatches it once per 1024-row batch.  The
speedup is reported and asserted to stay above 2x.

Runs under pytest-benchmark like the figure benches, or standalone::

    PYTHONPATH=src python benchmarks/bench_vector_vs_row.py
"""

from __future__ import annotations

import os
import statistics
import time

from repro.sqlengine import SQLDatabase
from repro.wisconsin import loaders, wisconsin_records

NUM_ROWS = int(os.environ.get("REPRO_BENCH_VECTOR_ROWS", 100_000))
QUERY = (
    "SELECT t.twenty AS k, COUNT(*) AS n, SUM(t.unique1) AS s "
    "FROM Bench.data t "
    "WHERE t.ten < 8 AND t.onePercent >= 10 "
    "GROUP BY t.twenty"
)
REPEATS = 3


def _build(exec_engine: str) -> SQLDatabase:
    db = SQLDatabase(name="postgres", exec_engine=exec_engine)
    loaders.load_postgres(
        db, "Bench", "data", wisconsin_records(NUM_ROWS, seed=2021), indexes=False
    )
    return db


def _median_of(db: SQLDatabase, repeats: int = REPEATS) -> tuple[float, list]:
    """Median of *repeats* timings — robust to a one-off scheduler stall.

    The old best-of-N (min) was still flaky in the *other* direction: one
    lucky row-engine run or one unlucky vector run distorts the ratio.
    The median ignores a single outlier on either side.
    """
    timings = []
    records = None
    for _ in range(repeats):
        started = time.perf_counter()
        records = db.execute(QUERY).records
        timings.append(time.perf_counter() - started)
    return statistics.median(timings), records


def run() -> dict:
    row_db = _build("row")
    vector_db = _build("vector")
    assert vector_db.execute(QUERY).stats.exec_engine == "vector"

    row_seconds, row_records = _median_of(row_db)
    vector_seconds, vector_records = _median_of(vector_db)
    assert row_records == vector_records

    return {
        "rows": NUM_ROWS,
        "row_seconds": row_seconds,
        "vector_seconds": vector_seconds,
        "speedup": row_seconds / vector_seconds,
        "row_rows_per_sec": NUM_ROWS / row_seconds,
        "vector_rows_per_sec": NUM_ROWS / vector_seconds,
    }


def format_result(result: dict) -> str:
    lines = [
        f"full-scan filter+aggregate, {result['rows']:,} rows, median of {REPEATS}",
        f"  row engine:    {result['row_seconds'] * 1000:8.1f} ms"
        f"  ({result['row_rows_per_sec']:,.0f} rows/s)",
        f"  vector engine: {result['vector_seconds'] * 1000:8.1f} ms"
        f"  ({result['vector_rows_per_sec']:,.0f} rows/s)",
        f"  speedup:       {result['speedup']:8.2f}x",
    ]
    return "\n".join(lines)


def test_vector_beats_row_by_2x(results_dir):
    from conftest import write_result

    result = run()
    if result["speedup"] < 2.0:
        # One retry before failing: a loaded CI host can stall an entire
        # 3-repeat round; a genuine kernel regression fails both rounds.
        result = run()
    write_result(results_dir, "vector_vs_row.txt", format_result(result))
    assert result["speedup"] >= 2.0, format_result(result)


if __name__ == "__main__":
    result = run()
    print(format_result(result))
