"""Ablation: each backend with its secondary indexes dropped.

The paper's analysis repeatedly credits indexes for PolyFrame's wins
(expressions 3, 9, 10, 11, 12, 13).  This bench measures the index-backed
expressions with and without secondary indexes on every backend.
"""

from __future__ import annotations

import pytest

from repro.bench import benchmark_params, build_systems, run_suite
from repro.bench.expressions import EXPRESSIONS
from repro.bench.report import format_expression_table

from conftest import BENCH_XS, write_result

INDEX_SENSITIVE = tuple(expr for expr in EXPRESSIONS if expr.id in (3, 9, 10, 11, 12, 13))
POLY_SYSTEMS = (
    "PolyFrame-AsterixDB", "PolyFrame-PostgreSQL",
    "PolyFrame-MongoDB", "PolyFrame-Neo4j",
)


@pytest.fixture(scope="module")
def indexed_systems(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("idx")
    return build_systems(BENCH_XS, tmp, which=POLY_SYSTEMS, indexes=True)


@pytest.fixture(scope="module")
def unindexed_systems(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("noidx")
    return build_systems(BENCH_XS, tmp, which=POLY_SYSTEMS, indexes=False)


def test_with_indexes(benchmark, indexed_systems, params):
    measurements = benchmark.pedantic(
        run_suite, args=(indexed_systems, INDEX_SENSITIVE, params),
        kwargs={"dataset": "XS"}, rounds=1, iterations=1,
    )
    assert all(m.status == "ok" for m in measurements)


def test_without_indexes(benchmark, unindexed_systems, params):
    measurements = benchmark.pedantic(
        run_suite, args=(unindexed_systems, INDEX_SENSITIVE, params),
        kwargs={"dataset": "XS"}, rounds=1, iterations=1,
    )
    assert all(m.status == "ok" for m in measurements)


def test_emit_index_ablation(benchmark, indexed_systems, unindexed_systems, params, results_dir):
    def compare() -> str:
        with_idx = run_suite(indexed_systems, INDEX_SENSITIVE, params, dataset="XS")
        without_idx = run_suite(unindexed_systems, INDEX_SENSITIVE, params, dataset="XS")
        pieces = [
            format_expression_table(
                with_idx, timing="expression", title="With secondary indexes"
            ),
            "",
            format_expression_table(
                without_idx, timing="expression", title="Without secondary indexes"
            ),
        ]
        # Sorting with a LIMIT (expression 9) must be strictly faster with
        # an index on the sort column, on the index-order backends.
        by_with = {(m.system, m.expression_id): m for m in with_idx}
        by_without = {(m.system, m.expression_id): m for m in without_idx}
        for system in ("PolyFrame-PostgreSQL", "PolyFrame-MongoDB"):
            assert (
                by_with[(system, 9)].expression_seconds
                < by_without[(system, 9)].expression_seconds
            ), system
        return "\n".join(pieces)

    write_result(results_dir, "ablation_indexes.txt", benchmark.pedantic(compare, rounds=1))
