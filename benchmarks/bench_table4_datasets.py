"""Tables IV & V: dataset presets for single- and multi-node experiments.

Regenerates both setup tables at the reproduction's scale and benchmarks
backend loading (not a paper timing point, but useful operational data).
"""

from __future__ import annotations

from repro.bench.datasets import (
    estimated_frame_bytes,
    multi_node_scaleup_sizes,
    multi_node_speedup_records,
    pandas_memory_budget,
)
from repro.sqlengine import SQLDatabase
from repro.wisconsin import loaders, wisconsin_records, WisconsinGenerator

from conftest import BENCH_XS, SIZES, write_result


def test_postgres_load_throughput(benchmark):
    records = wisconsin_records(BENCH_XS)

    def load() -> int:
        db = SQLDatabase()
        return loaders.load_postgres(db, "Bench", "data", records)

    assert benchmark(load) == BENCH_XS


def test_emit_table4(benchmark, results_dir):
    def build() -> str:
        lines = [
            "Single-node dataset presets (paper ratios, bench scale)",
            f"{'name':<6} {'records':>10} {'est. JSON bytes':>18}",
            "-" * 40,
        ]
        for name, count in SIZES.items():
            estimate = WisconsinGenerator(count).estimated_json_bytes()
            lines.append(f"{name:<6} {count:>10,} {estimate:>18,}")
        lines.append("")
        lines.append(
            f"Pandas memory budget: {pandas_memory_budget(BENCH_XS):,} bytes "
            f"(~{pandas_memory_budget(BENCH_XS) / estimated_frame_bytes(BENCH_XS):.1f}x "
            "the XS frame footprint)"
        )
        return "\n".join(lines)

    write_result(results_dir, "table4_single_node_datasets.txt", benchmark(build))


def test_emit_table5(benchmark, results_dir):
    def build() -> str:
        speedup = multi_node_speedup_records(BENCH_XS)
        scaleup = multi_node_scaleup_sizes(BENCH_XS)
        lines = [
            "Multi-node experiment setup (paper Table V shape)",
            f"{'nodes':<7} {'speedup records':>16} {'scaleup records':>16}",
            "-" * 45,
        ]
        for nodes in (1, 2, 3, 4):
            lines.append(f"{nodes:<7} {speedup:>16,} {scaleup[nodes]:>16,}")
        return "\n".join(lines)

    write_result(results_dir, "table5_cluster_setup.txt", benchmark(build))
