"""Goodput under overload: admission control on vs off at 4x offered load.

The claim from ``docs/deadlines.md``: when offered load exceeds capacity,
an unprotected backend does not degrade gracefully — every query queues
behind every other query and *all* of them finish late (p99 far beyond
any reasonable deadline), so the useful work rate collapses to ~zero
even though the backend is 100% busy.  With admission control on, the
AIMD limit caps concurrency at what the backend sustains, the bounded
deadline-aware queue sheds the hopeless excess immediately (retryable
:class:`~repro.errors.OverloadError`, fast), and every query the backend
*does* serve completes within its deadline — goodput stays near
capacity.

Setup: one embedded-PostgreSQL connector, a full-scan aggregation whose
serial latency ``L`` is measured first (capacity = 1/L qps), then 16
closed-loop clients (4x the admitted concurrency) hammering it.

- **controlled** — ``admission=`` limit 4, bounded queue, and a per-query
  deadline of ``10 L`` installed via :func:`budget_scope`.
- **uncontrolled** — admission and deadlines explicitly off (the seed
  path); the same 16 clients, every query runs to completion.

Asserted: controlled goodput (in-deadline completions per second) is at
least ``MIN_GOODPUT_RATIO`` of measured capacity, while the uncontrolled
run's p99 latency exceeds the deadline.  Writes
``benchmarks/results/overload.json``.
"""

from __future__ import annotations

import json
import threading
import time

from repro import PostgresConnector
from repro.errors import OverloadError, QueryTimeoutError
from repro.resilience import FaultInjector
from repro.resilience.admission import AdmissionController
from repro.resilience.deadline import Deadline, budget_scope
from repro.sqlengine import SQLDatabase
from repro.wisconsin import loaders, wisconsin_records

from conftest import write_result

NUM_RECORDS = 8_000
NUM_CLIENTS = 16  # 4x the admitted concurrency below
QUERIES_PER_CLIENT = 6
ADMIT_LIMIT = 4
MAX_QUEUE = 8
DEADLINE_MULTIPLIER = 10.0  # per-query budget, in units of serial latency
MIN_GOODPUT_RATIO = 0.7

#: Scans every row, returns ten groups: enough work per query that
#: concurrent clients genuinely contend for the engine.
QUERY = (
    'SELECT t."ten" AS k, COUNT(*) AS n, SUM(t."four") AS s '
    'FROM Bench.data t GROUP BY t."ten"'
)


def _connector(admission: "AdmissionController | bool | None") -> PostgresConnector:
    db = SQLDatabase(name="postgres")
    loaders.load_postgres(db, "Bench", "data", wisconsin_records(NUM_RECORDS))
    # Explicit off-switches so the bench measures the dispatch path even
    # under the CI chaos/cache/deadline matrices: an empty injector blocks
    # global fault rules, cache=False keeps every query executing, and
    # deadline=-1 pins the per-send deadline off (the controlled run
    # installs its budget ambiently instead).
    return PostgresConnector(
        db,
        fault_injector=FaultInjector(),
        cache=False,
        deadline=-1.0,
        admission=admission,
    )


def _measure_serial_latency(connector: PostgresConnector) -> float:
    samples = []
    for _ in range(5):
        started = time.perf_counter()
        connector.send(QUERY, "data")
        samples.append(time.perf_counter() - started)
    return sorted(samples)[len(samples) // 2]


def _hammer(connector: PostgresConnector, deadline_seconds: float | None) -> dict:
    """16 closed-loop clients, each sending its queries back to back.

    Returns per-query outcomes: ``completed`` latencies (seconds),
    ``shed`` (OverloadError, fast-failed), ``timed_out``
    (QueryTimeoutError: expired in the queue or overran the budget).
    """
    completed: list[float] = []
    shed: list[float] = []
    timed_out: list[float] = []
    lock = threading.Lock()

    def client() -> None:
        for _ in range(QUERIES_PER_CLIENT):
            started = time.perf_counter()
            try:
                if deadline_seconds is not None:
                    with budget_scope(Deadline(deadline_seconds)):
                        connector.send(QUERY, "data")
                else:
                    connector.send(QUERY, "data")
            except OverloadError:
                with lock:
                    shed.append(time.perf_counter() - started)
            except QueryTimeoutError:
                with lock:
                    timed_out.append(time.perf_counter() - started)
            else:
                with lock:
                    completed.append(time.perf_counter() - started)

    threads = [threading.Thread(target=client) for _ in range(NUM_CLIENTS)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    return {
        "completed": completed,
        "shed": shed,
        "timed_out": timed_out,
        "wall_seconds": wall,
    }


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def _summarize(outcome: dict, deadline_seconds: float, capacity_qps: float) -> dict:
    latencies = outcome["completed"]
    useful = [lat for lat in latencies if lat <= deadline_seconds]
    useful_qps = len(useful) / outcome["wall_seconds"]
    return {
        "offered": NUM_CLIENTS * QUERIES_PER_CLIENT,
        "completed": len(latencies),
        "completed_in_deadline": len(useful),
        "shed": len(outcome["shed"]),
        "timed_out": len(outcome["timed_out"]),
        "wall_seconds": outcome["wall_seconds"],
        "p50_seconds": _percentile(latencies, 0.50),
        "p99_seconds": _percentile(latencies, 0.99),
        "shed_p99_seconds": _percentile(outcome["shed"], 0.99),
        "useful_qps": useful_qps,
        "goodput_ratio": useful_qps / capacity_qps if capacity_qps else 0.0,
    }


def run_overload_bench() -> dict:
    serial = _connector(admission=False)
    latency = _measure_serial_latency(serial)
    capacity_qps = 1.0 / latency
    deadline_seconds = DEADLINE_MULTIPLIER * latency

    controller = AdmissionController(
        initial_limit=ADMIT_LIMIT,
        max_limit=ADMIT_LIMIT,
        max_queue=MAX_QUEUE,
        backend="overload-bench",
    )
    controlled_connector = _connector(admission=controller)
    controlled = _summarize(
        _hammer(controlled_connector, deadline_seconds),
        deadline_seconds,
        capacity_qps,
    )
    controlled["controller"] = controller.stats()

    uncontrolled = _summarize(
        _hammer(_connector(admission=False), None),
        deadline_seconds,
        capacity_qps,
    )

    # The two halves of the claim.
    assert controlled["goodput_ratio"] >= MIN_GOODPUT_RATIO, (
        f"admission-controlled goodput {controlled['goodput_ratio']:.2f} of "
        f"capacity is below the {MIN_GOODPUT_RATIO:.0%} floor "
        f"({controlled['completed_in_deadline']} in-deadline completions in "
        f"{controlled['wall_seconds']:.2f}s against {capacity_qps:.1f} qps)"
    )
    assert uncontrolled["p99_seconds"] > deadline_seconds, (
        f"uncontrolled p99 {uncontrolled['p99_seconds'] * 1e3:.1f}ms did not "
        f"exceed the {deadline_seconds * 1e3:.1f}ms deadline — the load is "
        f"not saturating the backend"
    )
    # Shedding fails fast: a rejected query must not burn the budget the
    # admitted queries are trying to meet.
    if controlled["shed"]:
        assert controlled["shed_p99_seconds"] < deadline_seconds

    return {
        "records": NUM_RECORDS,
        "clients": NUM_CLIENTS,
        "queries_per_client": QUERIES_PER_CLIENT,
        "admit_limit": ADMIT_LIMIT,
        "max_queue": MAX_QUEUE,
        "serial_latency_seconds": latency,
        "capacity_qps": capacity_qps,
        "deadline_seconds": deadline_seconds,
        "min_goodput_ratio": MIN_GOODPUT_RATIO,
        "controlled": controlled,
        "uncontrolled": uncontrolled,
    }


def test_overload_goodput(benchmark, results_dir):
    payload = benchmark.pedantic(run_overload_bench, rounds=1, iterations=1)
    write_result(results_dir, "overload.json", json.dumps(payload, indent=2))
    assert payload["controlled"]["goodput_ratio"] >= payload["min_goodput_ratio"]
    assert payload["uncontrolled"]["p99_seconds"] > payload["deadline_seconds"]
